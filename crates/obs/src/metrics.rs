//! A registry of named counters, gauges, and fixed-bucket histograms.
//!
//! Everything here is designed around one invariant: **snapshot values are
//! a pure function of the work performed, never of scheduling**. Counters
//! and histogram buckets are commutative sums over atomics, so sharded
//! pipeline stages produce byte-identical snapshots at any `--threads`
//! value; gauges are driver-set configuration/timing values. Histogram
//! buckets are fixed at registration (no dynamic resizing), so two runs
//! that observe the same samples serialize identically.
//!
//! ## Naming scheme
//!
//! Dot-separated lowercase segments, most-general first:
//! `<subsystem>.<noun>[.<qualifier>]` — e.g. `pairs.generated`,
//! `screen.discharged.owner_monitor`, `detect.trials_to_first_confirm`.
//! Wall-clock values are gauges named `stage.<stage>.wall_ns`; the
//! manifest layer routes every `*.wall_ns` gauge into its (run-varying)
//! `timings` section and everything else into the deterministic
//! `metrics` section.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monotonic counter handle (cheap to clone, safe to update from worker
/// threads).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle. Gauges hold driver-set values (effective
/// thread count, stage wall-clocks); setting one from racing workers would
/// make snapshots schedule-dependent, so don't.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn set_duration(&self, d: Duration) {
        self.set(d.as_nanos() as u64);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; an implicit overflow
    /// bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// Fixed-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// The default bucket bounds for trial-count distributions (1..64,
/// roughly geometric).
pub const TRIAL_BUCKETS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        let idx = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn read(m: &Metric) -> MetricValue {
    match m {
        Metric::Counter(c) => MetricValue::Counter(c.get()),
        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
        Metric::Histogram(h) => MetricValue::Histogram(
            h.0.bounds.clone(),
            h.0.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            h.count(),
            h.sum(),
        ),
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(u64),
    /// A histogram's buckets: `(bounds, counts, total, sum)` — `counts`
    /// has one extra trailing overflow entry.
    Histogram(Vec<u64>, Vec<u64>, u64, u64),
}

impl MetricValue {
    /// Serializes one value; scalars become bare integers, histograms an
    /// object tagged `"type": "histogram"`.
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::Int(*v as i64),
            MetricValue::Histogram(bounds, counts, total, sum) => Json::obj()
                .with("type", Json::Str("histogram".into()))
                .with(
                    "le",
                    Json::Arr(bounds.iter().map(|&b| Json::Int(b as i64)).collect()),
                )
                .with(
                    "counts",
                    Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                )
                .with("count", Json::Int(*total as i64))
                .with("sum", Json::Int(*sum as i64)),
        }
    }

    /// Parses what [`MetricValue::to_json`] wrote. Scalars come back as
    /// counters (the distinction is presentational).
    pub fn from_json(v: &Json) -> Result<MetricValue, String> {
        if let Some(n) = v.as_i64() {
            return Ok(MetricValue::Counter(n as u64));
        }
        let ints = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram missing `{key}`"))?
                .iter()
                .map(|x| {
                    x.as_i64()
                        .map(|n| n as u64)
                        .ok_or("non-integer bucket".into())
                })
                .collect()
        };
        match v.get("type").and_then(Json::as_str) {
            Some("histogram") => Ok(MetricValue::Histogram(
                ints("le")?,
                ints("counts")?,
                v.get("count")
                    .and_then(Json::as_i64)
                    .ok_or("histogram missing `count`")? as u64,
                v.get("sum")
                    .and_then(Json::as_i64)
                    .ok_or("histogram missing `sum`")? as u64,
            )),
            _ => Err("metric value is neither an integer nor a histogram".into()),
        }
    }
}

/// The registry. Shared by reference across a run; handles are registered
/// on first use and live for the registry's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Returns the counter named `name`, registering it at zero on first
    /// use. Panics if the name is already registered as another kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match m {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))));
        match m {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram named `name`, registering it with `bounds` on
    /// first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        let m = map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        });
        match m {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Reads one metric's current value without registering anything.
    pub fn value(&self, name: &str) -> Option<MetricValue> {
        let map = self.inner.lock().unwrap();
        map.get(name).map(read)
    }

    /// Reads a counter/gauge scalar without registering anything (0 when
    /// the metric never fired).
    pub fn scalar(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(MetricValue::Counter(v) | MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, m)| (name.clone(), read(m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_commutatively_across_threads() {
        let m = Metrics::new();
        let c = m.counter("x");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(m.counter("x").get(), 8000);
    }

    #[test]
    fn histogram_buckets_are_fixed_and_deterministic() {
        let m = Metrics::new();
        let h = m.histogram("t", &[1, 2, 4]);
        for v in [1, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        let snap = m.snapshot();
        let (name, v) = &snap[0];
        assert_eq!(name, "t");
        assert_eq!(
            *v,
            MetricValue::Histogram(vec![1, 2, 4], vec![2, 1, 2, 1], 6, 111)
        );
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let m = Metrics::new();
        m.counter("z.last");
        m.gauge("a.first");
        m.counter("m.mid");
        let names: Vec<_> = m.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn metric_value_json_round_trip() {
        for v in [
            MetricValue::Counter(7),
            MetricValue::Histogram(vec![1, 2], vec![1, 0, 3], 4, 9),
        ] {
            let parsed =
                MetricValue::from_json(&Json::parse(&v.to_json().to_compact()).unwrap()).unwrap();
            match (&v, &parsed) {
                (MetricValue::Gauge(a) | MetricValue::Counter(a), MetricValue::Counter(b)) => {
                    assert_eq!(a, b)
                }
                _ => assert_eq!(v, parsed),
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.gauge("x");
        m.counter("x");
    }
}
