//! A registry of named counters, gauges, and fixed-bucket histograms.
//!
//! Everything here is designed around one invariant: **snapshot values are
//! a pure function of the work performed, never of scheduling**. Counters
//! and histogram buckets are commutative sums over atomics, so sharded
//! pipeline stages produce byte-identical snapshots at any `--threads`
//! value; gauges are driver-set configuration/timing values. Histogram
//! buckets are fixed at registration (no dynamic resizing), so two runs
//! that observe the same samples serialize identically.
//!
//! ## Naming scheme
//!
//! Dot-separated lowercase segments, most-general first:
//! `<subsystem>.<noun>[.<qualifier>]` — e.g. `pairs.generated`,
//! `screen.discharged.owner_monitor`, `detect.trials_to_first_confirm`.
//! Wall-clock values are gauges named `stage.<stage>.wall_ns`; the
//! manifest layer routes every `*.wall_ns` gauge into its (run-varying)
//! `timings` section and everything else into the deterministic
//! `metrics` section.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monotonic counter handle (cheap to clone, safe to update from worker
/// threads).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle. Gauges hold driver-set values (effective
/// thread count, stage wall-clocks); setting one from racing workers would
/// make snapshots schedule-dependent, so don't.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn set_duration(&self, d: Duration) {
        self.set(d.as_nanos() as u64);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; an implicit overflow
    /// bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// Fixed-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// The default bucket bounds for trial-count distributions (1..64,
/// roughly geometric).
pub const TRIAL_BUCKETS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// Bucket bounds for wall-clock latency distributions, in nanoseconds:
/// 100µs to 60s, roughly geometric. Used by the service's per-stage and
/// per-job latency histograms (`serve.job.wall_ns.*`,
/// `serve.stage.*.latency`), which live in the server-level registry and
/// are exposed through `watch`/`health` frames — never in per-job
/// manifests, whose metric section must stay run-invariant.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
];

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        let idx = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration sample in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the current bucket
    /// counts — see [`MetricValue::quantile`]. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let c = &self.0;
        let counts: Vec<u64> = c.counts.iter().map(|x| x.load(Ordering::Relaxed)).collect();
        bucket_quantile(&c.bounds, &counts, self.count(), q)
    }
}

/// Shared quantile estimator over fixed buckets: walks the cumulative
/// counts to the target rank and interpolates linearly within the
/// containing bucket. Samples in the overflow bucket are reported as the
/// last finite bound (a deliberate under-estimate: the histogram carries
/// no upper edge there).
fn bucket_quantile(bounds: &[u64], counts: &[u64], total: u64, q: f64) -> Option<u64> {
    if total == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0);
    let mut cum = 0u64;
    for (idx, &n) in counts.iter().enumerate() {
        cum += n;
        if (cum as f64) < rank {
            continue;
        }
        if idx >= bounds.len() {
            return Some(bounds.last().copied().unwrap_or(0));
        }
        let lo = if idx == 0 { 0 } else { bounds[idx - 1] };
        let hi = bounds[idx];
        let into = rank - (cum - n) as f64;
        let frac = if n == 0 { 1.0 } else { into / n as f64 };
        return Some(lo + ((hi - lo) as f64 * frac) as u64);
    }
    Some(bounds.last().copied().unwrap_or(0))
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn read(m: &Metric) -> MetricValue {
    match m {
        Metric::Counter(c) => MetricValue::Counter(c.get()),
        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
        Metric::Histogram(h) => MetricValue::Histogram(
            h.0.bounds.clone(),
            h.0.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            h.count(),
            h.sum(),
        ),
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(u64),
    /// A histogram's buckets: `(bounds, counts, total, sum)` — `counts`
    /// has one extra trailing overflow entry.
    Histogram(Vec<u64>, Vec<u64>, u64, u64),
}

impl MetricValue {
    /// Serializes one value; scalars become bare integers, histograms an
    /// object tagged `"type": "histogram"`.
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::Int(*v as i64),
            MetricValue::Histogram(bounds, counts, total, sum) => Json::obj()
                .with("type", Json::Str("histogram".into()))
                .with(
                    "le",
                    Json::Arr(bounds.iter().map(|&b| Json::Int(b as i64)).collect()),
                )
                .with(
                    "counts",
                    Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                )
                .with("count", Json::Int(*total as i64))
                .with("sum", Json::Int(*sum as i64)),
        }
    }

    /// Parses what [`MetricValue::to_json`] wrote. Scalars come back as
    /// counters (the distinction is presentational).
    pub fn from_json(v: &Json) -> Result<MetricValue, String> {
        if let Some(n) = v.as_i64() {
            return Ok(MetricValue::Counter(n as u64));
        }
        let ints = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram missing `{key}`"))?
                .iter()
                .map(|x| {
                    x.as_i64()
                        .map(|n| n as u64)
                        .ok_or("non-integer bucket".into())
                })
                .collect()
        };
        match v.get("type").and_then(Json::as_str) {
            Some("histogram") => Ok(MetricValue::Histogram(
                ints("le")?,
                ints("counts")?,
                v.get("count")
                    .and_then(Json::as_i64)
                    .ok_or("histogram missing `count`")? as u64,
                v.get("sum")
                    .and_then(Json::as_i64)
                    .ok_or("histogram missing `sum`")? as u64,
            )),
            _ => Err("metric value is neither an integer nor a histogram".into()),
        }
    }

    /// Estimates the `q`-quantile of a histogram snapshot via cumulative
    /// bucket walk with linear interpolation inside the containing bucket.
    /// `None` for scalars or empty histograms.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        match self {
            MetricValue::Histogram(bounds, counts, total, _) => {
                bucket_quantile(bounds, counts, *total, q)
            }
            _ => None,
        }
    }

    /// The change from `base` to `self`: counters subtract (saturating, so
    /// a restarted registry reads as its own value), gauges keep their
    /// current reading, histograms subtract bucket-wise when the bounds
    /// match and fall back to the current snapshot when they don't.
    pub fn delta(&self, base: &MetricValue) -> MetricValue {
        match (self, base) {
            (MetricValue::Counter(cur), MetricValue::Counter(old)) => {
                MetricValue::Counter(cur.saturating_sub(*old))
            }
            (
                MetricValue::Histogram(bounds, counts, total, sum),
                MetricValue::Histogram(b0, c0, t0, s0),
            ) if bounds == b0 && counts.len() == c0.len() => MetricValue::Histogram(
                bounds.clone(),
                counts
                    .iter()
                    .zip(c0)
                    .map(|(c, o)| c.saturating_sub(*o))
                    .collect(),
                total.saturating_sub(*t0),
                sum.saturating_sub(*s0),
            ),
            _ => self.clone(),
        }
    }
}

/// The registry. Shared by reference across a run; handles are registered
/// on first use and live for the registry's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Returns the counter named `name`, registering it at zero on first
    /// use. Panics if the name is already registered as another kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match m {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))));
        match m {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram named `name`, registering it with `bounds` on
    /// first use (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        let m = map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        });
        match m {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Reads one metric's current value without registering anything.
    pub fn value(&self, name: &str) -> Option<MetricValue> {
        let map = self.inner.lock().unwrap();
        map.get(name).map(read)
    }

    /// Reads a counter/gauge scalar without registering anything (0 when
    /// the metric never fired).
    pub fn scalar(&self, name: &str) -> u64 {
        match self.value(name) {
            Some(MetricValue::Counter(v) | MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, m)| (name.clone(), read(m)))
            .collect()
    }

    /// Snapshots every metric as its change since `base` (an earlier
    /// [`Metrics::snapshot`] of the same registry). Metrics absent from
    /// `base` report their full current value. Cheap: one lock, one walk —
    /// this is what the service's `watch` verb calls once per frame.
    pub fn snapshot_delta(&self, base: &[(String, MetricValue)]) -> Vec<(String, MetricValue)> {
        let prior: BTreeMap<&str, &MetricValue> =
            base.iter().map(|(n, v)| (n.as_str(), v)).collect();
        self.snapshot()
            .into_iter()
            .map(|(name, v)| {
                let d = match prior.get(name.as_str()) {
                    Some(old) => v.delta(old),
                    None => v,
                };
                (name, d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_commutatively_across_threads() {
        let m = Metrics::new();
        let c = m.counter("x");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(m.counter("x").get(), 8000);
    }

    #[test]
    fn histogram_buckets_are_fixed_and_deterministic() {
        let m = Metrics::new();
        let h = m.histogram("t", &[1, 2, 4]);
        for v in [1, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        let snap = m.snapshot();
        let (name, v) = &snap[0];
        assert_eq!(name, "t");
        assert_eq!(
            *v,
            MetricValue::Histogram(vec![1, 2, 4], vec![2, 1, 2, 1], 6, 111)
        );
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let m = Metrics::new();
        m.counter("z.last");
        m.gauge("a.first");
        m.counter("m.mid");
        let names: Vec<_> = m.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn metric_value_json_round_trip() {
        for v in [
            MetricValue::Counter(7),
            MetricValue::Histogram(vec![1, 2], vec![1, 0, 3], 4, 9),
        ] {
            let parsed =
                MetricValue::from_json(&Json::parse(&v.to_json().to_compact()).unwrap()).unwrap();
            match (&v, &parsed) {
                (MetricValue::Gauge(a) | MetricValue::Counter(a), MetricValue::Counter(b)) => {
                    assert_eq!(a, b)
                }
                _ => assert_eq!(v, parsed),
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.gauge("x");
        m.counter("x");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[10, 20, 40]);
        assert_eq!(h.quantile(0.5), None);
        for v in [5, 5, 15, 15, 30, 30, 30, 30] {
            h.observe(v);
        }
        // rank(0.25) = 2 → exactly exhausts bucket le=10.
        assert_eq!(h.quantile(0.25), Some(10));
        // rank(0.5) = 4 → exhausts bucket le=20.
        assert_eq!(h.quantile(0.5), Some(20));
        // rank(0.75) = 6 → 2 of 4 samples into bucket (20, 40].
        assert_eq!(h.quantile(0.75), Some(30));
        assert_eq!(h.quantile(1.0), Some(40));
    }

    #[test]
    fn quantile_overflow_reports_last_bound() {
        let m = Metrics::new();
        let h = m.histogram("lat", &[10, 20]);
        h.observe(1000);
        assert_eq!(h.quantile(0.5), Some(20));
        assert_eq!(h.quantile(0.99), Some(20));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_keeps_gauges() {
        let m = Metrics::new();
        let c = m.counter("c");
        let g = m.gauge("g");
        let h = m.histogram("h", &[1, 2]);
        c.add(3);
        g.set(10);
        h.observe(1);
        let base = m.snapshot();
        c.add(4);
        g.set(99);
        h.observe(2);
        h.observe(50);
        let delta = m.snapshot_delta(&base);
        let get = |name: &str| delta.iter().find(|(n, _)| n == name).unwrap().1.clone();
        assert_eq!(get("c"), MetricValue::Counter(4));
        assert_eq!(get("g"), MetricValue::Gauge(99));
        assert_eq!(
            get("h"),
            MetricValue::Histogram(vec![1, 2], vec![0, 1, 1], 2, 52)
        );
        // Metrics registered after the base snapshot report full values.
        m.counter("new").add(7);
        let d2 = m.snapshot_delta(&base);
        assert_eq!(
            d2.iter().find(|(n, _)| n == "new").unwrap().1,
            MetricValue::Counter(7)
        );
    }
}
