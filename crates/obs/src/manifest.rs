//! Machine-readable run manifests: one JSON document per invocation.
//!
//! A manifest captures everything needed to compare two runs of the same
//! workload PR-over-PR:
//!
//! * **identity** — workload name, tool version, git revision;
//! * **environment** — host core count and the effective worker-thread
//!   count (the reproducibility variables that legitimately differ
//!   between hosts);
//! * **config** — seeds, strategy, and any other knobs, as strings;
//! * **timings** — per-stage wall-clock nanoseconds (vary run to run);
//! * **metrics** — the final values of every registry metric (a pure
//!   function of the work performed: byte-identical across runs and
//!   across `--threads` values).
//!
//! The split between `timings` and `metrics` is mechanical: any gauge
//! whose name ends in `.wall_ns` is routed to `timings` (key without the
//! suffix), everything else to `metrics` — so "is this value diffable?"
//! is decided by the naming scheme, not per call site.

use crate::json::Json;
use crate::metrics::MetricValue;
use crate::Obs;

/// Schema tag every manifest carries; bump on breaking layout changes.
pub const MANIFEST_SCHEMA: &str = "narada-manifest/1";

/// The fields [`RunManifest::from_json`] refuses to proceed without.
pub const REQUIRED_FIELDS: &[&str] = &[
    "schema",
    "name",
    "tool",
    "git_rev",
    "host_cores",
    "threads",
    "timings",
    "metrics",
];

/// One run's manifest. `PartialEq` compares every field, which the
/// serialize → parse → equal round-trip test leans on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Workload name (`synth`, `explore`, `screen`, …); bench bins write
    /// the file as `BENCH_<name>.json`.
    pub name: String,
    /// Tool identity, e.g. `narada 0.1.0`.
    pub tool: String,
    /// Abbreviated git revision of the working tree (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// `available_parallelism` of the recording host.
    pub host_cores: u64,
    /// Effective worker-thread count the run used.
    pub threads: u64,
    /// Seeds, strategy, and other knobs, in insertion order.
    pub config: Vec<(String, String)>,
    /// Per-stage wall-clock nanoseconds, name-sorted.
    pub timings: Vec<(String, u64)>,
    /// Final metric values, name-sorted and thread-count-invariant.
    pub metrics: Vec<(String, MetricValue)>,
}

/// The recording host's core count (1 when the query fails).
pub fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// The working tree's abbreviated git revision, or `unknown`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl RunManifest {
    /// A manifest stamped with this build's identity and the recording
    /// host's environment.
    pub fn new(name: &str, threads: u64) -> RunManifest {
        RunManifest {
            name: name.to_string(),
            tool: concat!("narada ", env!("CARGO_PKG_VERSION")).to_string(),
            git_rev: git_rev(),
            host_cores: host_cores(),
            threads,
            config: Vec::new(),
            timings: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// [`RunManifest::new`] plus the final state of `obs`'s registry:
    /// `*.wall_ns` gauges become `timings` entries, everything else
    /// `metrics` entries.
    pub fn from_obs(name: &str, threads: u64, obs: &Obs) -> RunManifest {
        let mut m = RunManifest::new(name, threads);
        for (metric_name, value) in obs.metrics.snapshot() {
            match metric_name.strip_suffix(".wall_ns") {
                Some(stage) => {
                    let ns = match value {
                        MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
                        MetricValue::Histogram(..) => continue,
                    };
                    m.timings.push((stage.to_string(), ns));
                }
                None => m.metrics.push((metric_name, value)),
            }
        }
        m
    }

    /// Records a config entry (seeds, strategy, flags), replacing any
    /// previous value for the key.
    pub fn set_config(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        match self.config.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.config.push((key.to_string(), value)),
        }
    }

    /// Looks up a config entry.
    pub fn config_get(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a metric value.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The `metrics` section alone, serialized — the byte string the
    /// thread-count-invariance guarantee is stated over.
    pub fn metrics_json(&self) -> Json {
        Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }

    /// Serializes the whole manifest.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema", Json::Str(MANIFEST_SCHEMA.into()))
            .with("name", Json::Str(self.name.clone()))
            .with("tool", Json::Str(self.tool.clone()))
            .with("git_rev", Json::Str(self.git_rev.clone()))
            .with("host_cores", Json::Int(self.host_cores as i64))
            .with("threads", Json::Int(self.threads as i64))
            .with(
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            )
            .with(
                "timings",
                Json::Obj(
                    self.timings
                        .iter()
                        .map(|(k, ns)| (k.clone(), Json::Int(*ns as i64)))
                        .collect(),
                ),
            )
            .with("metrics", self.metrics_json())
    }

    /// The on-disk representation.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses and validates a manifest document, rejecting missing
    /// [`REQUIRED_FIELDS`] and schema mismatches.
    pub fn from_json(doc: &Json) -> Result<RunManifest, String> {
        for field in REQUIRED_FIELDS {
            if doc.get(field).is_none() {
                return Err(format!("manifest missing required field `{field}`"));
            }
        }
        let s = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest field `{key}` must be a string"))
        };
        let n = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_i64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("manifest field `{key}` must be an integer"))
        };
        let schema = s("schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "unsupported manifest schema `{schema}` (expected `{MANIFEST_SCHEMA}`)"
            ));
        }
        let mut config = Vec::new();
        if let Some(entries) = doc.get("config").and_then(Json::as_obj) {
            for (k, v) in entries {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("config `{k}` must be a string"))?;
                config.push((k.clone(), v.to_string()));
            }
        }
        let mut timings = Vec::new();
        for (k, v) in doc.get("timings").and_then(Json::as_obj).unwrap_or(&[]) {
            let ns = v
                .as_i64()
                .ok_or_else(|| format!("timing `{k}` must be an integer"))?;
            timings.push((k.clone(), ns as u64));
        }
        let mut metrics = Vec::new();
        for (k, v) in doc.get("metrics").and_then(Json::as_obj).unwrap_or(&[]) {
            metrics.push((
                k.clone(),
                MetricValue::from_json(v).map_err(|e| format!("metric `{k}`: {e}"))?,
            ));
        }
        Ok(RunManifest {
            name: s("name")?,
            tool: s("tool")?,
            git_rev: s("git_rev")?,
            host_cores: n("host_cores")?,
            threads: n("threads")?,
            config,
            timings,
            metrics,
        })
    }

    /// Parses [`RunManifest::to_pretty`] output.
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        RunManifest::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }

    /// Human-readable per-stage breakdown, as printed by `narada report`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "run `{}` — {} @ {} ({} host cores, {} threads)\n",
            self.name, self.tool, self.git_rev, self.host_cores, self.threads
        );
        if !self.config.is_empty() {
            out.push_str("config:\n");
            for (k, v) in &self.config {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        out.push_str("stage timings:\n");
        let total: u64 = self.timings.iter().map(|(_, ns)| ns).sum();
        for (stage, ns) in &self.timings {
            out.push_str(&format!("  {stage:<24} {:>10.3}s\n", secs(*ns)));
        }
        out.push_str(&format!("  {:<24} {:>10.3}s\n", "(total)", secs(total)));
        out.push_str("metrics:\n");
        for (name, value) in &self.metrics {
            out.push_str(&format!("  {name:<40} {}\n", render_value(value)));
        }
        out
    }

    /// Stage-by-stage, metric-by-metric comparison of two manifests —
    /// `narada report --diff a.json b.json`.
    pub fn render_diff(a: &RunManifest, b: &RunManifest) -> String {
        let mut out = format!(
            "manifest diff: `{}` ({} @ {}, {} threads)  →  `{}` ({} @ {}, {} threads)\n",
            a.name, a.tool, a.git_rev, a.threads, b.name, b.tool, b.git_rev, b.threads
        );
        out.push_str("stage timings:\n");
        for (stage, va, vb) in merged(&a.timings, &b.timings) {
            let delta = match (va, vb) {
                (Some(&x), Some(&y)) if x > 0 => {
                    format!("{:+.1}%", 100.0 * (y as f64 - x as f64) / x as f64)
                }
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "  {stage:<24} {:>10} {:>10}  {delta:>8}\n",
                fmt_opt_secs(va),
                fmt_opt_secs(vb),
            ));
        }
        out.push_str("metrics:\n");
        let mut identical = 0usize;
        for (name, va, vb) in merged(&a.metrics, &b.metrics) {
            if va == vb {
                identical += 1;
                continue;
            }
            out.push_str(&format!(
                "  {name:<40} {:>12} -> {:<12}\n",
                va.map_or("(absent)".to_string(), render_value),
                vb.map_or("(absent)".to_string(), render_value),
            ));
        }
        out.push_str(&format!("  ({identical} metrics identical)\n"));
        out
    }
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn fmt_opt_secs(v: Option<&u64>) -> String {
    v.map_or("-".to_string(), |&ns| format!("{:.3}s", secs(ns)))
}

fn render_value(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(n) | MetricValue::Gauge(n) => n.to_string(),
        MetricValue::Histogram(bounds, counts, count, sum) => {
            // Explicit `le`-style bound labels: bucket identity must not
            // depend on position alone, or diffs of histograms with
            // different bounds read as equal. Zero buckets are elided.
            let mut buckets = String::new();
            for (idx, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let label = bounds
                    .get(idx)
                    .map(|b| format!("le{b}"))
                    .unwrap_or_else(|| "le_inf".to_string());
                if !buckets.is_empty() {
                    buckets.push(' ');
                }
                buckets.push_str(&format!("{label}={c}"));
            }
            if buckets.is_empty() {
                buckets.push('-');
            }
            format!("histogram(count={count}, sum={sum}; {buckets})")
        }
    }
}

/// Name-sorted outer join of two name/value lists.
fn merged<'a, V>(
    a: &'a [(String, V)],
    b: &'a [(String, V)],
) -> Vec<(&'a str, Option<&'a V>, Option<&'a V>)> {
    let mut names: Vec<&str> = a
        .iter()
        .map(|(k, _)| k.as_str())
        .chain(b.iter().map(|(k, _)| k.as_str()))
        .collect();
    names.sort_unstable();
    names.dedup();
    let find =
        |list: &'a [(String, V)], name: &str| list.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    names
        .into_iter()
        .map(|name| (name, find(a, name), find(b, name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> RunManifest {
        let obs = Obs::new();
        obs.metrics.counter("pairs.generated").add(65);
        obs.metrics.counter("pairs.pruned").add(3);
        obs.metrics
            .gauge("stage.trace.wall_ns")
            .set_duration(Duration::from_millis(12));
        obs.metrics
            .histogram("detect.trials_to_first_confirm", &[1, 2, 4])
            .observe(2);
        let mut m = RunManifest::from_obs("synth", 8, &obs);
        m.set_config("seed", 42);
        m.set_config("strategy", "pct:3");
        m
    }

    #[test]
    fn round_trips_exactly() {
        let m = sample();
        let text = m.to_pretty();
        let parsed = RunManifest::parse(&text).unwrap();
        assert_eq!(parsed, m);
        // And byte-stability of re-serialization.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn wall_ns_gauges_route_to_timings() {
        let m = sample();
        assert_eq!(m.timings, vec![("stage.trace".to_string(), 12_000_000)]);
        assert!(m.metric("stage.trace.wall_ns").is_none());
        assert!(m.metric("pairs.generated").is_some());
    }

    #[test]
    fn env_is_stamped() {
        let m = RunManifest::new("x", 4);
        assert_eq!(m.threads, 4);
        assert!(m.host_cores >= 1);
        assert!(!m.git_rev.is_empty());
        assert!(m.tool.starts_with("narada "));
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let m = sample();
        for field in REQUIRED_FIELDS {
            let Json::Obj(entries) = m.to_json() else {
                unreachable!()
            };
            let doc = Json::Obj(entries.into_iter().filter(|(k, _)| k != field).collect());
            let err = RunManifest::from_json(&doc).unwrap_err();
            assert!(err.contains(field), "dropping {field}: {err}");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = sample().to_json().with("schema", Json::Str("v9".into()));
        assert!(RunManifest::from_json(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn render_and_diff_mention_stages_and_metrics() {
        let a = sample();
        let mut b = sample();
        let slot = b
            .metrics
            .iter_mut()
            .find(|(k, _)| k == "pairs.generated")
            .unwrap();
        slot.1 = MetricValue::Counter(70);
        let r = a.render();
        assert!(r.contains("stage.trace"), "{r}");
        assert!(r.contains("pairs.generated"), "{r}");
        let d = RunManifest::render_diff(&a, &b);
        assert!(d.contains("65"), "{d}");
        assert!(d.contains("70"), "{d}");
        assert!(d.contains("metrics identical"), "{d}");
    }

    #[test]
    fn histograms_render_explicit_bounds_in_diff() {
        let a = sample();
        let mut b = sample();
        let slot = b
            .metrics
            .iter_mut()
            .find(|(k, _)| k == "detect.trials_to_first_confirm")
            .unwrap();
        // Same positional counts as `a` but under different bounds plus an
        // overflow sample: the diff must expose the bound labels so the
        // two sides are visibly different, with count and sum alongside.
        slot.1 = MetricValue::Histogram(vec![1, 3, 9], vec![0, 1, 0, 1], 2, 14);
        let d = RunManifest::render_diff(&a, &b);
        assert!(d.contains("histogram(count=1, sum=2; le2=1)"), "{d}");
        assert!(
            d.contains("histogram(count=2, sum=14; le3=1 le_inf=1)"),
            "{d}"
        );
    }
}
