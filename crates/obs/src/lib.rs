//! # narada-obs — structured run telemetry
//!
//! Zero-dependency observability layer threaded through every stage of
//! the narada pipeline:
//!
//! * [`Tracer`] — hierarchical spans with monotonic timing, thread
//!   ordinals, and parent linkage, emitted as JSONL (`--trace-out`);
//! * [`Metrics`] — a registry of named counters, gauges, and fixed-bucket
//!   histograms whose snapshot is a pure function of the work performed
//!   (byte-identical at any `--threads` value);
//! * [`RunManifest`] — one machine-readable JSON document per invocation
//!   capturing seeds, strategy, environment, stage timings, and all final
//!   metric values, written by the CLI (`--manifest`) and by every bench
//!   bin (`BENCH_<name>.json`) so the perf trajectory is recorded and
//!   diffable PR-over-PR (`narada report --diff`).
//!
//! The pieces travel together as an [`Obs`] bundle:
//!
//! ```
//! use narada_obs::{Obs, RunManifest, span};
//!
//! let obs = Obs::with_tracing();
//! {
//!     let _stage = span!(obs.tracer, "stage.derive", jobs = 2);
//!     obs.metrics.counter("pairs.generated").add(2);
//! }
//! let manifest = RunManifest::from_obs("demo", 1, &obs);
//! assert!(manifest.to_pretty().contains("pairs.generated"));
//! assert!(obs.tracer.to_jsonl().contains("stage.derive"));
//! ```

#![warn(missing_docs)]

pub mod eventlog;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod span;
pub mod trend;

pub use eventlog::EventLog;
pub use json::{Json, JsonError};
pub use manifest::{git_rev, host_cores, RunManifest, MANIFEST_SCHEMA, REQUIRED_FIELDS};
pub use metrics::{
    Counter, Gauge, Histogram, MetricValue, Metrics, LATENCY_BUCKETS_NS, TRIAL_BUCKETS,
};
pub use span::{thread_ordinal, SpanGuard, SpanRecord, Tracer};
pub use trend::{is_wall_metric, TrendReport, TrendRow, TrendStatus};

/// The telemetry bundle one run threads through the pipeline: a metrics
/// registry plus a tracer. `Sync`, so sharded workers can record through
/// a shared reference.
#[derive(Debug)]
pub struct Obs {
    /// The run's metric registry.
    pub metrics: Metrics,
    /// The run's span collector.
    pub tracer: Tracer,
}

impl Obs {
    /// Metrics only; span guards are inert (the default for library
    /// entry points that were not handed an explicit bundle).
    pub fn new() -> Obs {
        Obs {
            metrics: Metrics::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Metrics plus span recording (`--trace-out`).
    pub fn with_tracing() -> Obs {
        Obs {
            metrics: Metrics::new(),
            tracer: Tracer::enabled(),
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}
