//! A minimal self-contained JSON value, serializer, and parser.
//!
//! The container has no network access, so the usual `serde_json` cannot
//! be fetched; the telemetry layer needs only a small, deterministic
//! subset anyway:
//!
//! * objects preserve **insertion order** (serialization is reproducible
//!   when the writer inserts keys in a fixed order — the metrics registry
//!   hands keys over sorted);
//! * numbers are either `i64` integers (every metric value) or `f64`
//!   floats (parsed input only; the writers in this workspace emit
//!   integers so manifests are byte-stable);
//! * the parser accepts the full JSON grammar (escapes, exponents,
//!   nesting) and rejects trailing garbage.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up `key` in an object (`None` on non-objects and misses).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the on-disk manifest format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest round-trip formatting; force a `.0`
                    // so the value re-parses as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, rejecting trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            match text.parse() {
                Ok(n) => Ok(Json::Int(n)),
                // Magnitudes beyond i64 degrade to float rather than fail.
                Err(_) => text
                    .parse()
                    .map(Json::Float)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_documents() {
        let doc = Json::obj()
            .with("name", Json::Str("synth".into()))
            .with("count", Json::Int(42))
            .with("ok", Json::Bool(true))
            .with("none", Json::Null)
            .with(
                "items",
                Json::Arr(vec![Json::Int(-1), Json::Float(2.5), Json::Str("x".into())]),
            )
            .with(
                "nested",
                Json::obj().with("k", Json::Str("v\n\"q\"".into())),
            );
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "via {text}");
        }
    }

    #[test]
    fn preserves_insertion_order() {
        let doc = Json::obj()
            .with("z", Json::Int(1))
            .with("a", Json::Int(2))
            .with("m", Json::Int(3));
        assert_eq!(doc.to_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn set_replaces_in_place() {
        let doc = Json::obj()
            .with("a", Json::Int(1))
            .with("b", Json::Int(2))
            .with("a", Json::Int(9));
        assert_eq!(doc.to_compact(), r#"{"a":9,"b":2}"#);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\u0041\n\t\\ \ud83d\ude00 é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\t\\ 😀 é");
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Float(1.8446744073709552e19)
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"s":"x","n":3,"a":[1],"f":2.0}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("f").and_then(Json::as_i64), Some(2));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }
}
