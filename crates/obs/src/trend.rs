//! Trend comparison across run manifests — the core of `narada report
//! --trend` and the CI perf-regression gate.
//!
//! Manifests are grouped by their `name` field in input order: the first
//! manifest of each group is the committed baseline, the last is the
//! current run (middle entries are ignored — they let CI pass a history
//! directory verbatim). Within a group, metric keys are aligned by a
//! name-sorted outer join and each pair is classified:
//!
//! * **Deterministic metrics** (everything whose name does not look
//!   wall-derived) are gated: a relative change beyond `tolerance_pct`, a
//!   metric present on only one side, or a config mismatch is a
//!   **breach**.
//! * **Wall-derived metrics** (names ending `_ns`, `_ms`, `_per_sec`,
//!   `_pct`, and everything in the `timings` section) are informational by
//!   default — host-dependent timings don't gate CI — unless an explicit
//!   `wall_tolerance_pct` is supplied.
//!
//! Parsed manifests cannot distinguish counters from gauges (the scalar
//! JSON encoding is identical), so the wall/deterministic split is by
//! naming convention; the repo's metric naming scheme (see
//! [`crate::metrics`]) routes every wall-clock quantity into one of the
//! recognized suffixes.

use crate::json::Json;
use crate::manifest::RunManifest;
use crate::metrics::MetricValue;

/// True when `name` denotes a wall-derived (host-dependent) quantity that
/// should not gate CI by default.
pub fn is_wall_metric(name: &str) -> bool {
    ["_ns", "_ms", "_per_sec", "_pct"]
        .iter()
        .any(|s| name.ends_with(s))
}

/// Severity of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendStatus {
    /// Within tolerance (or identical).
    Pass,
    /// Wall-derived metric with no gating tolerance — reported, not gated.
    Info,
    /// Outside tolerance, missing on one side, or config mismatch.
    Breach,
}

/// One aligned metric comparison.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// Manifest group (the manifest `name` field).
    pub group: String,
    /// Metric key, or `config.<key>` / `timings.<key>` for those sections.
    pub key: String,
    /// Rendered baseline value (`-` when absent).
    pub base: String,
    /// Rendered current value (`-` when absent).
    pub cur: String,
    /// Signed relative change in percent, when both sides are scalar.
    pub delta_pct: Option<f64>,
    /// Gate outcome for this row.
    pub status: TrendStatus,
}

/// A full trend comparison: every aligned row, plus the breach count that
/// decides the exit code.
#[derive(Debug, Default)]
pub struct TrendReport {
    /// All compared rows, grouped by manifest name, section-ordered and
    /// key-sorted within.
    pub rows: Vec<TrendRow>,
    /// Number of rows with [`TrendStatus::Breach`].
    pub breaches: usize,
}

impl TrendReport {
    /// True when no gated metric breached its tolerance band.
    pub fn ok(&self) -> bool {
        self.breaches == 0
    }

    /// Renders the comparison as an aligned text table — breaches flagged
    /// `!!`, informational (ungated wall) rows `~`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut group = "";
        for row in &self.rows {
            if row.group != group {
                group = &row.group;
                out.push_str(&format!("== trend: {group} ==\n"));
            }
            let mark = match row.status {
                TrendStatus::Breach => "!!",
                TrendStatus::Info => " ~",
                TrendStatus::Pass => "  ",
            };
            let delta = match row.delta_pct {
                Some(d) if d != 0.0 => format!("  ({d:+.1}%)"),
                Some(_) => String::new(),
                None if row.status == TrendStatus::Breach => "  (unaligned)".to_string(),
                None => String::new(),
            };
            out.push_str(&format!(
                "{mark} {:<44} {:>16} -> {:<16}{delta}\n",
                row.key, row.base, row.cur
            ));
        }
        out.push_str(&format!(
            "{} rows, {} breach(es)\n",
            self.rows.len(),
            self.breaches
        ));
        out
    }
}

fn render_scalar(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(n) | MetricValue::Gauge(n) => n.to_string(),
        MetricValue::Histogram(_, _, count, sum) => format!("hist(n={count},sum={sum})"),
    }
}

fn scalar_of(v: &MetricValue) -> Option<u64> {
    match v {
        MetricValue::Counter(n) | MetricValue::Gauge(n) => Some(*n),
        MetricValue::Histogram(..) => None,
    }
}

/// Relative change in percent; `None` encodes "appeared from zero", which
/// is infinite relative change and trips any finite tolerance.
fn pct_change(base: u64, cur: u64) -> Option<f64> {
    if base == cur {
        return Some(0.0);
    }
    if base == 0 {
        return None;
    }
    Some((cur as f64 - base as f64) / base as f64 * 100.0)
}

/// Compares one aligned metric pair under `tol` (percent; `None` =
/// informational-only).
fn judge(
    base: Option<&MetricValue>,
    cur: Option<&MetricValue>,
    tol: Option<f64>,
) -> (Option<f64>, TrendStatus) {
    let gate = |breached: bool| match tol {
        None => TrendStatus::Info,
        Some(_) if breached => TrendStatus::Breach,
        Some(_) => TrendStatus::Pass,
    };
    match (base, cur) {
        (Some(b), Some(c)) => match (scalar_of(b), scalar_of(c)) {
            (Some(bs), Some(cs)) => match pct_change(bs, cs) {
                Some(d) => (Some(d), gate(d.abs() > tol.unwrap_or(f64::INFINITY))),
                None => (None, gate(true)),
            },
            // Histograms (or mixed kinds): any structural difference —
            // bounds, bucket counts, count, or sum — breaches under a gate.
            _ => (None, gate(b != c)),
        },
        // Present on only one side: always a breach when gated.
        _ => (None, gate(true)),
    }
}

/// Compares parsed manifests grouped by `name`. `tolerance_pct` gates
/// deterministic metrics (config entries gate at exact equality
/// regardless); `wall_tolerance_pct` (usually `None`) optionally gates
/// wall-derived metrics and timings.
pub fn compare(
    manifests: &[RunManifest],
    tolerance_pct: f64,
    wall_tolerance_pct: Option<f64>,
) -> Result<TrendReport, String> {
    let mut order: Vec<&str> = Vec::new();
    for m in manifests {
        if !order.contains(&m.name.as_str()) {
            order.push(&m.name);
        }
    }
    let mut report = TrendReport::default();
    for name in order {
        let group: Vec<&RunManifest> = manifests.iter().filter(|m| m.name == name).collect();
        if group.len() < 2 {
            return Err(format!(
                "trend group `{name}` has only one manifest — need a baseline and a current run"
            ));
        }
        compare_pair(
            name,
            group[0],
            group[group.len() - 1],
            tolerance_pct,
            wall_tolerance_pct,
            &mut report,
        );
    }
    Ok(report)
}

fn compare_pair(
    name: &str,
    base: &RunManifest,
    cur: &RunManifest,
    tol: f64,
    wall_tol: Option<f64>,
    report: &mut TrendReport,
) {
    // Config entries: any key/value drift means the runs aren't comparable
    // — exact-match gate, independent of the numeric tolerance.
    for (key, b, c) in outer_join(&base.config, &cur.config) {
        if b == c {
            continue;
        }
        report.breaches += 1;
        report.rows.push(TrendRow {
            group: name.to_string(),
            key: format!("config.{key}"),
            base: b.cloned().unwrap_or_else(|| "-".into()),
            cur: c.cloned().unwrap_or_else(|| "-".into()),
            delta_pct: None,
            status: TrendStatus::Breach,
        });
    }

    let mut push = |key: String, b: Option<&MetricValue>, c: Option<&MetricValue>, t| {
        let (delta_pct, status) = judge(b, c, t);
        if status == TrendStatus::Breach {
            report.breaches += 1;
        }
        report.rows.push(TrendRow {
            group: name.to_string(),
            key,
            base: b.map(render_scalar).unwrap_or_else(|| "-".into()),
            cur: c.map(render_scalar).unwrap_or_else(|| "-".into()),
            delta_pct,
            status,
        });
    };

    // Metrics: deterministic keys gate at `tol`, wall-suffixed keys at
    // `wall_tol` (informational when absent).
    for (key, b, c) in outer_join(&base.metrics, &cur.metrics) {
        let t = if is_wall_metric(key) {
            wall_tol
        } else {
            Some(tol)
        };
        push(key.to_string(), b, c, t);
    }

    // Timings are wall-clock by construction.
    for (key, b, c) in outer_join(&base.timings, &cur.timings) {
        let b = b.copied().map(MetricValue::Gauge);
        let c = c.copied().map(MetricValue::Gauge);
        push(format!("timings.{key}"), b.as_ref(), c.as_ref(), wall_tol);
    }
}

/// Name-sorted outer join over two name/value pair lists.
fn outer_join<'a, V>(
    a: &'a [(String, V)],
    b: &'a [(String, V)],
) -> Vec<(&'a str, Option<&'a V>, Option<&'a V>)> {
    let mut names: Vec<&str> = a
        .iter()
        .map(|(k, _)| k.as_str())
        .chain(b.iter().map(|(k, _)| k.as_str()))
        .collect();
    names.sort_unstable();
    names.dedup();
    let find =
        |list: &'a [(String, V)], name: &str| list.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    names
        .into_iter()
        .map(|name| (name, find(a, name), find(b, name)))
        .collect()
}

/// Parses a manifest file for trend comparison.
pub fn load_manifest(path: &std::path::Path) -> Result<RunManifest, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    RunManifest::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(name: &str, metrics: &[(&str, u64)]) -> RunManifest {
        let mut m = RunManifest::new(name, 1);
        m.set_config("seed", 42);
        for (k, v) in metrics {
            m.metrics.push((k.to_string(), MetricValue::Counter(*v)));
        }
        m.metrics.sort_by(|a, b| a.0.cmp(&b.0));
        m
    }

    #[test]
    fn identical_runs_pass_at_zero_tolerance() {
        let a = manifest("bench", &[("jobs", 10), ("cache.hits", 7)]);
        let b = manifest("bench", &[("jobs", 10), ("cache.hits", 7)]);
        let r = compare(&[a, b], 0.0, None).unwrap();
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn count_drift_breaches_zero_tolerance() {
        let a = manifest("bench", &[("jobs", 10)]);
        let b = manifest("bench", &[("jobs", 11)]);
        let r = compare(&[a, b], 0.0, None).unwrap();
        assert_eq!(r.breaches, 1);
        assert!(r.render().contains("!!"), "{}", r.render());
    }

    #[test]
    fn drift_within_tolerance_band_passes() {
        let a = manifest("bench", &[("jobs", 100)]);
        let b = manifest("bench", &[("jobs", 104)]);
        assert!(compare(&[a.clone(), b.clone()], 5.0, None).unwrap().ok());
        assert!(!compare(&[a, b], 3.0, None).unwrap().ok());
    }

    #[test]
    fn wall_metrics_are_informational_unless_gated() {
        let a = manifest("bench", &[("warm_ns", 1_000), ("rate_per_sec", 50)]);
        let b = manifest("bench", &[("warm_ns", 9_000), ("rate_per_sec", 10)]);
        let r = compare(&[a.clone(), b.clone()], 0.0, None).unwrap();
        assert!(r.ok(), "{}", r.render());
        assert!(r.rows.iter().all(|x| x.status == TrendStatus::Info));
        // ...but an explicit wall tolerance turns them into a gate.
        assert!(!compare(&[a, b], 0.0, Some(50.0)).unwrap().ok());
    }

    #[test]
    fn missing_and_appearing_metrics_breach() {
        let a = manifest("bench", &[("old", 1)]);
        let b = manifest("bench", &[("new", 1)]);
        let r = compare(&[a, b], 100.0, None).unwrap();
        assert_eq!(r.breaches, 2);
    }

    #[test]
    fn appearance_from_zero_trips_any_tolerance() {
        let a = manifest("bench", &[("evictions", 0)]);
        let b = manifest("bench", &[("evictions", 3)]);
        assert!(!compare(&[a, b], 1000.0, None).unwrap().ok());
    }

    #[test]
    fn config_mismatch_breaches() {
        let a = manifest("bench", &[("jobs", 1)]);
        let mut b = manifest("bench", &[("jobs", 1)]);
        b.set_config("seed", 43);
        let r = compare(&[a, b], 0.0, None).unwrap();
        assert_eq!(r.breaches, 1);
        assert!(r.render().contains("config.seed"), "{}", r.render());
    }

    #[test]
    fn histogram_drift_breaches() {
        let mut a = manifest("bench", &[]);
        let mut b = manifest("bench", &[]);
        a.metrics.push((
            "trials".into(),
            MetricValue::Histogram(vec![1, 2], vec![1, 0, 0], 1, 1),
        ));
        b.metrics.push((
            "trials".into(),
            MetricValue::Histogram(vec![1, 2], vec![0, 1, 0], 1, 2),
        ));
        assert!(!compare(&[a, b], 0.0, None).unwrap().ok());
    }

    #[test]
    fn groups_align_by_name_first_vs_last() {
        let a = manifest("vm", &[("ops", 5)]);
        let mid = manifest("vm", &[("ops", 9)]);
        let b = manifest("vm", &[("ops", 5)]);
        let other_base = manifest("serve", &[("jobs", 2)]);
        let other_cur = manifest("serve", &[("jobs", 2)]);
        let r = compare(&[a, other_base, mid, b, other_cur], 0.0, None).unwrap();
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn singleton_group_is_an_error() {
        let a = manifest("vm", &[("ops", 5)]);
        assert!(compare(&[a], 0.0, None).unwrap_err().contains("vm"));
    }

    #[test]
    fn wall_suffixes_are_recognized() {
        for name in ["x.cold_ns", "x.lat_ms", "x.rate_per_sec", "x.speedup_pct"] {
            assert!(is_wall_metric(name), "{name}");
        }
        for name in ["jobs", "cache.program_hits", "explore.schedule_novelty"] {
            assert!(!is_wall_metric(name), "{name}");
        }
    }
}
