//! Size-rotated JSONL event log.
//!
//! The service appends one compact JSON object per line describing job
//! lifecycle, cache traffic, and drain events. Rotation happens **before**
//! a write that would push the active file past the size budget: the
//! current file is renamed to `<base>.<N>.jsonl` (N increasing) and a
//! fresh file is started, so no JSON line is ever split across a rotation
//! boundary and every file on disk parses line-by-line.

use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

struct LogInner {
    file: File,
    written: u64,
    rotations: u64,
}

/// Append-only JSONL writer with size-based rotation.
#[derive(Debug)]
pub struct EventLog {
    dir: PathBuf,
    base: String,
    max_bytes: u64,
    inner: Mutex<Option<LogInner>>,
}

impl std::fmt::Debug for LogInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogInner")
            .field("written", &self.written)
            .field("rotations", &self.rotations)
            .finish()
    }
}

impl EventLog {
    /// Opens (appending) `<dir>/<base>.jsonl`, rotating once it would
    /// exceed `max_bytes`. Existing content counts toward the budget, so a
    /// restarted server keeps honoring the same cap.
    pub fn open(dir: &Path, base: &str, max_bytes: u64) -> Result<EventLog, String> {
        let log = EventLog {
            dir: dir.to_path_buf(),
            base: base.to_string(),
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(None),
        };
        let mut guard = log.inner.lock().unwrap();
        *guard = Some(log.open_active()?);
        drop(guard);
        Ok(log)
    }

    /// Path of the active (unrotated) log file.
    pub fn active_path(&self) -> PathBuf {
        self.dir.join(format!("{}.jsonl", self.base))
    }

    fn rotated_path(&self, n: u64) -> PathBuf {
        self.dir.join(format!("{}.{n}.jsonl", self.base))
    }

    fn open_active(&self) -> Result<LogInner, String> {
        let path = self.active_path();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        // Resume the rotation counter past any files left by a previous run.
        let mut rotations = 0;
        while self.rotated_path(rotations).exists() {
            rotations += 1;
        }
        Ok(LogInner {
            file,
            written,
            rotations,
        })
    }

    /// Appends one event as a compact JSON line, rotating first if the
    /// line would push the active file past the size budget. Errors are
    /// returned, not panicked — telemetry must never take the server down.
    pub fn append(&self, event: &Json) -> Result<(), String> {
        let mut line = event.to_compact();
        line.push('\n');
        let mut guard = self.inner.lock().unwrap();
        let inner = guard.as_mut().ok_or("event log closed")?;
        if inner.written > 0 && inner.written + line.len() as u64 > self.max_bytes {
            let n = inner.rotations;
            std::fs::rename(self.active_path(), self.rotated_path(n))
                .map_err(|e| format!("rotate event log: {e}"))?;
            let mut fresh = self.open_active()?;
            fresh.rotations = n + 1;
            *inner = fresh;
        }
        inner
            .file
            .write_all(line.as_bytes())
            .map_err(|e| format!("append event log: {e}"))?;
        inner.written += line.len() as u64;
        Ok(())
    }

    /// Number of rotations performed (including files found at open).
    pub fn rotations(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .as_ref()
            .map(|i| i.rotations)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("narada-eventlog-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn event(i: usize) -> Json {
        Json::obj()
            .with("kind", Json::Str("test".into()))
            .with("seq", Json::Int(i as i64))
    }

    #[test]
    fn rotates_at_size_threshold_without_splitting_lines() {
        let dir = scratch("rotate");
        let log = EventLog::open(&dir, "events", 128).unwrap();
        for i in 0..40 {
            log.append(&event(i)).unwrap();
        }
        assert!(log.rotations() > 0, "expected at least one rotation");
        // Every file — rotated and active — must consist of complete,
        // parseable JSON lines, and the sequence numbers must cover 0..40
        // in order with no loss or duplication across boundaries.
        let mut files: Vec<PathBuf> = (0..log.rotations()).map(|n| log.rotated_path(n)).collect();
        files.push(log.active_path());
        let mut seqs = Vec::new();
        for path in files {
            let mut text = String::new();
            File::open(&path)
                .unwrap()
                .read_to_string(&mut text)
                .unwrap();
            assert!(
                text.len() as u64 <= 128,
                "{} exceeds the size budget",
                path.display()
            );
            assert!(
                text.ends_with('\n'),
                "{} has a partial line",
                path.display()
            );
            for line in text.lines() {
                let parsed = Json::parse(line).expect("rotated line parses");
                seqs.push(parsed.get("seq").and_then(Json::as_i64).unwrap());
            }
        }
        assert_eq!(seqs, (0..40).collect::<Vec<i64>>());
    }

    #[test]
    fn reopen_resumes_budget_and_rotation_counter() {
        let dir = scratch("reopen");
        {
            let log = EventLog::open(&dir, "events", 96).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
        }
        let log = EventLog::open(&dir, "events", 96).unwrap();
        let before = log.rotations();
        for i in 10..20 {
            log.append(&event(i)).unwrap();
        }
        assert!(log.rotations() >= before);
        // Rotated names never collide: each rotation index appears once.
        let mut n = 0;
        while log.rotated_path(n).exists() {
            n += 1;
        }
        assert_eq!(n, log.rotations());
    }

    #[test]
    fn oversized_single_event_still_lands_whole() {
        let dir = scratch("oversize");
        let log = EventLog::open(&dir, "events", 8).unwrap();
        log.append(&event(1)).unwrap();
        log.append(&event(2)).unwrap();
        let mut text = String::new();
        File::open(log.active_path())
            .unwrap()
            .read_to_string(&mut text)
            .unwrap();
        // The active file holds exactly one complete line even though the
        // line alone exceeds the budget.
        assert_eq!(text.lines().count(), 1);
        Json::parse(text.trim()).unwrap();
    }
}
