//! Hierarchical tracing spans with monotonic timing and JSONL emission.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; a span records its name,
//! a monotonic `[start_ns, end_ns]` window relative to the tracer's
//! epoch, the recording thread's ordinal, its parent span (innermost
//! enclosing guard on the same thread, or an explicitly supplied id for
//! spans created inside sharded workers), and free-form string
//! attributes. Records are buffered in memory and serialized as one JSON
//! object per line ([`Tracer::to_jsonl`]), sorted by span id — creation
//! order, which for a single-threaded run is a stable golden-testable
//! sequence.
//!
//! Tracing defaults to **disabled** ([`Tracer::disabled`]): guards are
//! inert and allocate nothing, so instrumented hot paths cost one branch
//! when no `--trace-out` was requested.

use crate::json::Json;
use std::cell::RefCell;
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Creation-ordered id, unique within the tracer.
    pub id: u64,
    /// Innermost enclosing span on the recording thread (or the id given
    /// to [`Tracer::span_under`]).
    pub parent: Option<u64>,
    /// Span name (see the taxonomy in DESIGN.md §6).
    pub name: String,
    /// Process-wide ordinal of the recording OS thread.
    pub thread: u64,
    /// Nanoseconds since the tracer's epoch at guard creation.
    pub start_ns: u64,
    /// Nanoseconds since the tracer's epoch at guard drop.
    pub end_ns: u64,
    /// Attribute key/value pairs, in attachment order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Serializes the record as one JSONL object.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .with("id", Json::Int(self.id as i64))
            .with(
                "parent",
                match self.parent {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            )
            .with("name", Json::Str(self.name.clone()))
            .with("thread", Json::Int(self.thread as i64))
            .with("start_ns", Json::Int(self.start_ns as i64))
            .with("end_ns", Json::Int(self.end_ns as i64));
        if !self.attrs.is_empty() {
            doc.set(
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            );
        }
        doc
    }
}

// Process-wide stable thread ordinals (assigned on first use per OS
// thread; ordinal 0 is whichever thread asked first).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    // Innermost-first stack of (tracer id, span id) for parent linkage.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The ordinal of the calling OS thread.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

static NEXT_TRACER: AtomicU64 = AtomicU64::new(1);

/// A span collector. Cheap when disabled; thread-safe when enabled.
#[derive(Debug)]
pub struct Tracer {
    /// Distinguishes this tracer's frames on the shared per-thread span
    /// stack (multiple tracers may be live in one process, e.g. tests).
    tracer_id: u64,
    enabled: bool,
    epoch: Instant,
    next_span: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl Tracer {
    /// A tracer that records every span.
    pub fn enabled() -> Tracer {
        Tracer {
            tracer_id: NEXT_TRACER.fetch_add(1, Ordering::Relaxed),
            enabled: true,
            epoch: Instant::now(),
            next_span: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    /// A tracer whose guards are inert no-ops.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            ..Tracer::enabled()
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span; the parent is the innermost open span of this tracer
    /// on the calling thread.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.open(name, None, true)
    }

    /// Opens a span with an explicit parent — for jobs running on sharded
    /// worker threads, where the stage span lives on the driver thread's
    /// stack and implicit linkage cannot see it.
    pub fn span_under(&self, name: &str, parent: Option<u64>) -> SpanGuard<'_> {
        self.open(name, parent, false)
    }

    fn open(&self, name: &str, parent: Option<u64>, implicit_parent: bool) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                tracer: self,
                record: None,
            };
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = if implicit_parent {
            SPAN_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|(t, _)| *t == self.tracer_id)
                    .map(|(_, id)| *id)
            })
        } else {
            parent
        };
        SPAN_STACK.with(|s| s.borrow_mut().push((self.tracer_id, id)));
        SpanGuard {
            tracer: self,
            record: Some(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                thread: thread_ordinal(),
                start_ns: self.epoch.elapsed().as_nanos() as u64,
                end_ns: 0,
                attrs: Vec::new(),
            }),
        }
    }

    /// Snapshot of all finished spans, sorted by id (creation order).
    pub fn finished(&self) -> Vec<SpanRecord> {
        let mut records = self.records.lock().unwrap().clone();
        records.sort_by_key(|r| r.id);
        records
    }

    /// Serializes every finished span as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.finished() {
            out.push_str(&r.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

/// RAII handle for an open span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    record: Option<SpanRecord>,
}

impl SpanGuard<'_> {
    /// Attaches an attribute (no-op on a disabled tracer).
    pub fn attr(&mut self, key: &str, value: &dyn Display) {
        if let Some(r) = &mut self.record {
            r.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// This span's id, for explicit [`Tracer::span_under`] parenting.
    /// `None` when the tracer is disabled.
    pub fn id(&self) -> Option<u64> {
        self.record.as_ref().map(|r| r.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(mut record) = self.record.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards are almost always dropped innermost-first; tolerate
            // out-of-order drops by removing the exact frame.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == self.tracer.tracer_id && id == record.id)
            {
                stack.remove(pos);
            }
        });
        record.end_ns = self.tracer.epoch.elapsed().as_nanos() as u64;
        self.tracer.records.lock().unwrap().push(record);
    }
}

/// Opens a span on `$tracer` with optional `key = value` attributes:
/// `span!(obs.tracer, "derive.pair", pair = i)`. Attribute values are
/// formatted with `Display` only when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $tracer.span($name);
        $( guard.attr(stringify!($key), &$value); )*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_links_parents() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            {
                let mut b = t.span("b");
                b.attr("k", &7);
            }
            let _c = t.span("c");
        }
        let spans = t.finished();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("a").parent, None);
        assert_eq!(by_name("b").parent, Some(by_name("a").id));
        assert_eq!(by_name("c").parent, Some(by_name("a").id));
        assert_eq!(by_name("b").attrs, vec![("k".to_string(), "7".to_string())]);
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
    }

    #[test]
    fn explicit_parenting_crosses_threads() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let root_id = root.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = t.span_under("worker", root_id);
            });
        });
        drop(root);
        let spans = t.finished();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, root_id);
        assert_ne!(
            worker.thread,
            spans.iter().find(|s| s.name == "root").unwrap().thread
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let mut g = span!(t, "x", k = 1);
        assert_eq!(g.id(), None);
        g.attr("more", &2);
        drop(g);
        assert!(t.finished().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn two_tracers_do_not_cross_link() {
        let t1 = Tracer::enabled();
        let t2 = Tracer::enabled();
        let _a = t1.span("outer1");
        let b = t2.span("outer2");
        drop(b);
        let spans = t2.finished();
        assert_eq!(spans[0].parent, None, "t1's open span must not parent t2's");
    }

    #[test]
    fn jsonl_lines_parse() {
        let t = Tracer::enabled();
        {
            let _s = span!(t, "s", idx = 3);
        }
        let text = t.to_jsonl();
        for line in text.lines() {
            let doc = crate::json::Json::parse(line).unwrap();
            assert_eq!(doc.get("name").and_then(Json::as_str), Some("s"));
            assert!(doc.get("start_ns").is_some());
        }
    }
}
