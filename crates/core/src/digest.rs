//! Shared 64-bit FNV-1a content digests.
//!
//! One implementation for every content digest computed above the VM
//! layer: the difftest sweep digest, the serve artifact-cache keys, and
//! the HIR unit digests behind incremental re-lowering. (`narada-vm`
//! keeps its own private FNV folds in `event.rs`/`schedule.rs` — it sits
//! *below* this crate in the dependency order and cannot import it.)
//!
//! The digests are *content addresses*, not cryptographic hashes: two
//! artifacts with equal digests are treated as interchangeable by the
//! serve cache, which is sound for trusted in-process inputs and the
//! corpus-scale key spaces involved.

use narada_lang::digest::DigestSink;

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use narada_core::digest::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"abc");
/// assert_eq!(h.finish(), Fnv1a::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Folds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte string.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The lang crate's digest hooks feed their bytes through this impl
/// (`narada-lang` sits below this crate, so the sink trait lives there
/// and the hasher here).
impl DigestSink for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        Fnv1a::write(self, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Fnv1a::digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn str_is_length_prefixed() {
        let d = |parts: &[&str]| {
            let mut h = Fnv1a::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(d(&["ab", "c"]), d(&["a", "bc"]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv1a::digest(b"foobar"));
    }
}
