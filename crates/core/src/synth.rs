//! The Test Synthesizer (paper §3.4, Algorithm 1): materializes a
//! [`TestPlan`] against a live VM.
//!
//! 1. **collectObjects** — for every capture in the plan, run a seed test
//!    and suspend it just before the first client-level invocation of the
//!    captured method, keeping references to the receiver and arguments
//!    (lines 1–4 of Algorithm 1). Each capture is an independent seed run,
//!    so distinct captures yield distinct object sets.
//! 2. **shareObjects** — already encoded in the plan: multiple call slots
//!    referencing the same [`ObjRef`] receive the same object (line 5).
//! 3. Run the builder and setter invocations sequentially (lines 6–7).
//! 4. Spawn two threads performing the racy invocations and run them under
//!    the caller-provided scheduler (lines 8–9).

use crate::context::{ObjRef, Slot, TestPlan};
use narada_lang::hir::{Program, TestId};
use narada_lang::mir::MirProgram;
use narada_vm::{
    CallSite, EventSink, Machine, MachineOptions, RecordingScheduler, RunOutcome, Schedule,
    Scheduler, ThreadId, Value, VmError,
};
use std::fmt;

/// A synthesized multithreaded test: a plan plus bookkeeping about which
/// racing pairs it covers.
#[derive(Debug, Clone)]
pub struct SynthesizedTest {
    /// Index within the suite.
    pub index: usize,
    /// The executable plan.
    pub plan: TestPlan,
    /// Indices (into the pair set) of the racing pairs this test targets.
    pub covered_pairs: Vec<usize>,
}

/// Why a plan could not be executed.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// No seed test reaches a client call of this method.
    CaptureMissed(String),
    /// A seed run failed before reaching the capture point.
    SeedFailed(VmError),
    /// A builder or setter invocation failed.
    SetupFailed(VmError),
    /// A builder did not produce an object.
    BuilderNoObject(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::CaptureMissed(m) => write!(f, "no seed invocation of {m} to collect"),
            ExecError::SeedFailed(e) => write!(f, "seed run failed: {e}"),
            ExecError::SetupFailed(e) => write!(f, "context setup failed: {e}"),
            ExecError::BuilderNoObject(m) => write!(f, "builder {m} returned no object"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of one concurrent execution of a synthesized test.
#[derive(Debug)]
pub struct ExecReport {
    /// Scheduler outcome of the concurrent phase.
    pub outcome: RunOutcome,
    /// The two racy threads.
    pub threads: [ThreadId; 2],
    /// Runtime errors of the racy threads, if any (a crash here is itself
    /// evidence of a thread-safety violation).
    pub failures: Vec<String>,
}

/// Executes `plan` on `machine`, feeding all events (setup and concurrent
/// phase) to `sink`.
///
/// # Errors
///
/// Returns [`ExecError`] when object collection or context setup fails; the
/// concurrent phase itself never errors (thread crashes are reported in
/// [`ExecReport::failures`]).
pub fn execute_plan(
    machine: &mut Machine<'_>,
    seeds: &[TestId],
    plan: &TestPlan,
    scheduler: &mut dyn Scheduler,
    sink: &mut dyn EventSink,
    budget: u64,
) -> Result<ExecReport, ExecError> {
    let prefix = execute_plan_prefix(machine, seeds, plan, sink)?;
    execute_plan_suffix(machine, plan, &prefix, scheduler, sink, budget)
}

/// The resolved object context a plan prefix produced: the captured call
/// sites and the built shared objects. Together with a machine snapshot
/// taken right after [`execute_plan_prefix`], this is everything
/// [`execute_plan_suffix`] needs — the fork explorer runs the prefix
/// once, snapshots, and probes many suffixes from the fork point.
#[derive(Debug, Clone)]
pub struct PlanPrefix {
    /// Call sites captured from the seed tests (step 1).
    pub captures: Vec<CallSite>,
    /// Shared objects produced by the builder calls (steps 2–3).
    pub built: Vec<Value>,
}

/// Executes the sequential prefix of `plan` — object collection, builders,
/// and setters (steps 1–3 of the paper's Algorithm 1) — leaving the
/// machine suspended at the fork point just before the racy invocations.
/// The prefix never consults a scheduler: only [`execute_plan_suffix`]'s
/// `run_threads` does, so recorded schedules are suffix-only.
///
/// # Errors
///
/// Same as [`execute_plan`] (all of whose error cases arise here).
pub fn execute_plan_prefix(
    machine: &mut Machine<'_>,
    seeds: &[TestId],
    plan: &TestPlan,
    sink: &mut dyn EventSink,
) -> Result<PlanPrefix, ExecError> {
    // 1. collectObjects.
    let mut captures: Vec<CallSite> = Vec::with_capacity(plan.captures.len());
    for cap in &plan.captures {
        let mut found = None;
        for &seed in seeds {
            let got = machine
                .run_test_until_call(seed, sink, &mut |site| site.method == cap.method)
                .map_err(ExecError::SeedFailed)?;
            if let Some(site) = got {
                found = Some(site);
                break;
            }
        }
        let site = found
            .ok_or_else(|| ExecError::CaptureMissed(machine.program.qualified_name(cap.method)))?;
        captures.push(site);
    }

    // 2–3. Builders, then setters, resolving shared object references.
    let mut built: Vec<Value> = Vec::with_capacity(plan.builders.len());
    for call in &plan.builders {
        let m = machine.program.method(call.method);
        let value = if m.is_ctor {
            // `new C(shared, …)`: allocate, then run the constructor.
            let obj = machine.heap.alloc_instance(machine.program, m.owner);
            let args = resolve_args(&captures, &built, &call.args);
            machine
                .invoke(call.method, Some(Value::Ref(obj)), args, sink)
                .map_err(ExecError::SetupFailed)?;
            Value::Ref(obj)
        } else {
            let recv = call.recv.map(|r| resolve(&captures, &built, r));
            let args = resolve_args(&captures, &built, &call.args);
            machine
                .invoke(call.method, recv, args, sink)
                .map_err(ExecError::SetupFailed)?
                .ok_or_else(|| {
                    ExecError::BuilderNoObject(machine.program.qualified_name(call.method))
                })?
        };
        built.push(value);
    }
    for call in &plan.setters {
        let recv = call.recv.map(|r| resolve(&captures, &built, r));
        let args = resolve_args(&captures, &built, &call.args);
        match call.stop_after {
            // §4 partial invocation: a later library-internal write would
            // clobber the context, so the setter is suspended right after
            // its writeable assignment on a parked helper thread.
            Some(site) => {
                machine
                    .invoke_partial(call.method, recv, args, site, sink)
                    .map_err(ExecError::SetupFailed)?;
            }
            None => {
                machine
                    .invoke(call.method, recv, args, sink)
                    .map_err(ExecError::SetupFailed)?;
            }
        }
    }
    Ok(PlanPrefix { captures, built })
}

/// Executes the concurrent suffix of `plan` from a machine positioned at
/// the fork point (step 4 of Algorithm 1): spawns the two racy
/// invocations and runs them under `scheduler`.
///
/// # Errors
///
/// Returns [`ExecError::SetupFailed`] if spawning an invocation fails;
/// the concurrent phase itself never errors.
pub fn execute_plan_suffix(
    machine: &mut Machine<'_>,
    plan: &TestPlan,
    prefix: &PlanPrefix,
    scheduler: &mut dyn Scheduler,
    sink: &mut dyn EventSink,
    budget: u64,
) -> Result<ExecReport, ExecError> {
    let PlanPrefix { captures, built } = prefix;
    // 4. Spawn the racy invocations and run them concurrently.
    let mut threads = Vec::with_capacity(2);
    for call in &plan.racy {
        let recv = call.recv.map(|r| resolve(captures, built, r));
        let args = resolve_args(captures, built, &call.args);
        let tid = machine
            .spawn_invoke(call.method, recv, args, sink)
            .map_err(ExecError::SetupFailed)?;
        threads.push(tid);
    }
    let outcome = machine.run_threads(scheduler, sink, budget);
    let failures = threads
        .iter()
        .filter_map(|&t| match machine.thread_status(t) {
            narada_vm::ThreadStatus::Failed(e) => Some(e.to_string()),
            _ => None,
        })
        .collect();
    Ok(ExecReport {
        outcome,
        threads: [threads[0], threads[1]],
        failures,
    })
}

/// Executes `plan` while recording every scheduling decision of the
/// concurrent phase, returning the report together with a replayable
/// [`Schedule`] (named after `scheduler`, stamped with the machine seed).
///
/// # Errors
///
/// Same as [`execute_plan`].
pub fn execute_plan_recorded(
    machine: &mut Machine<'_>,
    seeds: &[TestId],
    plan: &TestPlan,
    scheduler: &mut dyn Scheduler,
    sink: &mut dyn EventSink,
    budget: u64,
) -> Result<(ExecReport, Schedule), ExecError> {
    let machine_seed = machine.seed();
    let mut rec = RecordingScheduler::new(scheduler);
    let report = execute_plan(machine, seeds, plan, &mut rec, sink, budget)?;
    Ok((report, rec.to_schedule(machine_seed)))
}

/// Convenience: builds a fresh machine and executes the plan once.
///
/// # Errors
///
/// Same as [`execute_plan`].
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_fresh(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    scheduler: &mut dyn Scheduler,
    sink: &mut dyn EventSink,
    machine_opts: MachineOptions,
    budget: u64,
) -> Result<ExecReport, ExecError> {
    let mut machine = Machine::new(prog, mir, machine_opts);
    execute_plan(&mut machine, seeds, plan, scheduler, sink, budget)
}

fn resolve(captures: &[CallSite], built: &[Value], r: ObjRef) -> Value {
    match r {
        ObjRef::Capture { capture, slot } => {
            let site = &captures[capture];
            match slot {
                Slot::Recv => site.recv.unwrap_or(Value::Null),
                Slot::Arg(i) => site.args.get(i).copied().unwrap_or(Value::Null),
            }
        }
        ObjRef::Built { builder } => built.get(builder).copied().unwrap_or(Value::Null),
    }
}

fn resolve_args(captures: &[CallSite], built: &[Value], args: &[ObjRef]) -> Vec<Value> {
    args.iter().map(|&a| resolve(captures, built, a)).collect()
}
