//! Work-sharded deterministic parallel execution.
//!
//! The Narada pipeline is embarrassingly parallel at three levels — per
//! class (corpus synthesis), per racing pair (context derivation), and per
//! schedule trial (detection) — and all three funnel through the one
//! primitive here: [`parallel_map`], an index-claiming fork/join over a
//! frozen work slice.
//!
//! ## Why results are thread-count-invariant
//!
//! Three properties combine to make output at `--threads N` byte-identical
//! to `--threads 1`:
//!
//! 1. **frozen input** — work items live in an immutable slice fixed
//!    before any worker starts; workers claim *indices* from an
//!    [`AtomicUsize`], so scheduling affects only *who* computes an item,
//!    never *what* the item is;
//! 2. **pure jobs** — each job is a function of its item and index alone.
//!    Stochastic jobs derive their RNG seed from job identity
//!    (`derive_seed(base, &[class, pair, trial])`,
//!    see [`narada_vm::rng`]), never from a shared generator whose
//!    consumption order would depend on scheduling;
//! 3. **index-ordered merge** — workers buffer `(index, result)` locally
//!    and the merge writes results back by index, so the output vector is
//!    independent of completion order.
//!
//! A worker panic is re-raised on the caller's thread after the scope
//! joins, preserving the usual test-failure behavior.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Number of workers the host can usefully run (`available_parallelism`,
/// 1 when the query fails).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "use every core"
/// (the CLI's `--threads` default), anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Applies `f` to every item of `items`, fanning out across at most
/// `threads` workers (`0` = all cores), and returns the results **in item
/// order** regardless of which worker computed what.
///
/// `f` receives `(index, &item)` so stochastic jobs can derive per-job
/// seeds from the index. With `threads <= 1` (or fewer than two items) the
/// map runs inline on the caller's thread — the sequential and parallel
/// paths produce identical output by construction, which the
/// `parallel_determinism` regression suite locks in.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Each worker's buffered `(index, result)` pairs, or its panic payload.
    type Shard<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send>>;

    // Lock-free index-claiming queue over the frozen slice.
    let next = AtomicUsize::new(0);
    let shards: Vec<Shard<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join)
            .collect()
    });

    let mut merged: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for shard in shards {
        match shard {
            Ok(results) => {
                for (i, r) in results {
                    merged[i] = Some(r);
                }
            }
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    merged
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Wall-clock breakdown of one pipeline run, per stage, plus the job
/// throughput of the sharded stages — the measurement the `--threads`
/// speedup claims are checked against (`results/`).
///
/// Since the telemetry layer landed this is a **derived view**: the
/// pipeline records stage wall-clocks and job counts into the
/// [`narada_obs::Metrics`] registry as it runs, and
/// [`StageTimings::from_metrics`] projects the registry into this struct
/// for rendering and for callers that predate the registry. The struct no
/// longer carries any bookkeeping of its own.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// Effective worker count the sharded stages ran with.
    pub threads: usize,
    /// Stage 1 — sequential seed-suite execution and tracing.
    pub trace: Duration,
    /// Stage 1b — the Access Analyzer over the recorded trace.
    pub analyze: Duration,
    /// Stage 2a — the Pair Generator.
    pub pairs: Duration,
    /// Static pre-screening of generated pairs (zero when the screener
    /// did not run).
    pub screen: Duration,
    /// Pairs the screener discharged before derivation (zero unless
    /// `--static-filter` pruned something).
    pub pairs_pruned: usize,
    /// Stage 2b/3 — context derivation + dedup (sharded over pairs).
    pub derive: Duration,
    /// Number of derivation jobs (racing pairs processed).
    pub derive_jobs: usize,
    /// Filled in by detection drivers: wall-clock and job count of the
    /// sharded detector trials, when a detect pass ran.
    pub detect: Option<(Duration, usize)>,
}

impl StageTimings {
    /// Projects the metrics registry into the legacy per-stage view.
    /// `threads` is passed separately because the effective worker count
    /// is run *environment*, not a metric (the registry must snapshot
    /// identically at any `--threads` value).
    pub fn from_metrics(metrics: &narada_obs::Metrics, threads: usize) -> StageTimings {
        let wall = |stage: &str| Duration::from_nanos(metrics.scalar(&format!("{stage}.wall_ns")));
        let mut t = StageTimings {
            threads,
            trace: wall("stage.trace"),
            analyze: wall("stage.analyze"),
            pairs: wall("stage.pairs"),
            screen: wall("stage.screen"),
            pairs_pruned: metrics.scalar("pairs.pruned") as usize,
            derive: wall("stage.derive"),
            derive_jobs: metrics.scalar("derive.jobs") as usize,
            detect: None,
        };
        let detect_wall = wall("stage.detect");
        let detect_jobs = metrics.scalar("detect.jobs") as usize;
        if detect_wall != Duration::ZERO || detect_jobs > 0 {
            t.detect = Some((detect_wall, detect_jobs));
        }
        t
    }

    /// Sum of the recorded stage wall-clocks.
    pub fn total(&self) -> Duration {
        self.trace
            + self.analyze
            + self.pairs
            + self.screen
            + self.derive
            + self.detect.map(|(d, _)| d).unwrap_or_default()
    }

    /// Derivation throughput in jobs/second.
    pub fn derive_jobs_per_sec(&self) -> f64 {
        jobs_per_sec(self.derive_jobs, self.derive)
    }

    /// Records the detect stage (called by detection drivers after the
    /// fact — synthesis itself never runs detectors).
    pub fn record_detect(&mut self, wall: Duration, jobs: usize) {
        self.detect = Some((wall, jobs));
    }

    /// Multi-line human-readable breakdown, as printed by the CLI.
    pub fn render(&self) -> String {
        let mut out = format!("stage timings (threads = {}):\n", self.threads);
        let line = |name: &str, d: Duration| format!("  {name:<8} {:>9.3}s\n", d.as_secs_f64());
        out.push_str(&line("trace", self.trace));
        out.push_str(&line("analyze", self.analyze));
        out.push_str(&line("pairs", self.pairs));
        if self.screen != Duration::ZERO || self.pairs_pruned > 0 {
            out.push_str(&format!(
                "  {:<8} {:>9.3}s  ({} pairs pruned)\n",
                "screen",
                self.screen.as_secs_f64(),
                self.pairs_pruned,
            ));
        }
        out.push_str(&format!(
            "  {:<8} {:>9.3}s  ({} jobs, {:.0} jobs/s)\n",
            "derive",
            self.derive.as_secs_f64(),
            self.derive_jobs,
            self.derive_jobs_per_sec(),
        ));
        if let Some((wall, jobs)) = self.detect {
            out.push_str(&format!(
                "  {:<8} {:>9.3}s  ({} jobs, {:.0} jobs/s)\n",
                "detect",
                wall.as_secs_f64(),
                jobs,
                jobs_per_sec(jobs, wall),
            ));
        }
        out.push_str(&format!(
            "  {:<8} {:>9.3}s\n",
            "total",
            self.total().as_secs_f64()
        ));
        out
    }
}

fn jobs_per_sec(jobs: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        jobs as f64 / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        parallel_map(8, &(0..57).collect::<Vec<usize>>(), |_, &x| {
            counters[x].fetch_add(1, Ordering::Relaxed)
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        assert_eq!(effective_threads(0), available_threads());
        assert_eq!(effective_threads(3), 3);
        let out = parallel_map(0, &(0..32).collect::<Vec<usize>>(), |_, &x| x + 1);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(4, &(0..16).collect::<Vec<usize>>(), |_, &x| {
                assert!(x != 9, "boom");
                x
            })
        });
        assert!(r.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn timings_render_mentions_all_stages() {
        let mut t = StageTimings {
            threads: 4,
            derive_jobs: 10,
            screen: Duration::from_millis(2),
            pairs_pruned: 4,
            ..Default::default()
        };
        t.record_detect(Duration::from_millis(5), 3);
        let s = t.render();
        for stage in [
            "trace", "analyze", "pairs", "screen", "derive", "detect", "total",
        ] {
            assert!(s.contains(stage), "missing {stage} in:\n{s}");
        }
        assert!(s.contains("4 pairs pruned"), "prune counter in:\n{s}");
    }

    #[test]
    fn stage_timings_project_from_registry() {
        let m = narada_obs::Metrics::new();
        m.gauge("stage.trace.wall_ns").set(1_000_000);
        m.counter("pairs.pruned").add(4);
        m.counter("derive.jobs").add(10);
        let t = StageTimings::from_metrics(&m, 4);
        assert_eq!(t.threads, 4);
        assert_eq!(t.trace, Duration::from_millis(1));
        assert_eq!(t.pairs_pruned, 4);
        assert_eq!(t.derive_jobs, 10);
        assert!(t.detect.is_none(), "no detect stage recorded");
        m.gauge("stage.detect.wall_ns").set(5_000_000);
        m.counter("detect.jobs").add(3);
        let t = StageTimings::from_metrics(&m, 4);
        assert_eq!(t.detect, Some((Duration::from_millis(5), 3)));
    }

    #[test]
    fn timings_render_hides_screen_stage_when_it_never_ran() {
        let t = StageTimings {
            threads: 1,
            ..Default::default()
        };
        assert!(
            !t.render().contains("screen"),
            "default pipeline output must be unchanged when screening is off"
        );
    }
}
