//! End-to-end driver: seed execution → trace analysis → pair generation →
//! context derivation → deduplicated synthesized test suite.
//!
//! This is the full Narada pipeline of Fig. 6, producing the numbers of
//! Table 4 (racing pairs, synthesized tests, synthesis time) for any MJ
//! program with a seed suite.

use crate::access::Analysis;
use crate::analyze::analyze;
use crate::context::derive_plan;
use crate::options::{ExploreOptions, SynthesisOptions};
use crate::pairs::{generate_pairs, PairSet};
use crate::parallel::{effective_threads, parallel_map, StageTimings};
use crate::screen::{ScreenerFn, StaticVerdict};
use crate::synth::SynthesizedTest;
use narada_lang::hir::Program;
use narada_lang::mir::MirProgram;
use narada_obs::{span, Obs};
use narada_vm::rng::derive_seed;
use narada_vm::{Machine, MachineOptions, ObservedScheduler, Schedule, VecSink, VmError};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Seed-derivation stage tags for demonstration runs (distinct from the
/// detect crate's 1–4 so the two layers never share a schedule).
const STAGE_DEMO_MACHINE: u64 = 11;
const STAGE_DEMO_SCHED: u64 = 12;

/// Everything the pipeline produced for one program.
#[derive(Debug)]
pub struct SynthesisOutput {
    /// The trace analysis result (access map, summaries).
    pub analysis: Analysis,
    /// Deduplicated accesses and racing pairs.
    pub pairs: PairSet,
    /// The deduplicated synthesized test suite.
    pub tests: Vec<SynthesizedTest>,
    /// Wall-clock time of the whole synthesis (trace + analysis + pairing
    /// + derivation), the paper's Table 4 "Time" column.
    pub elapsed: Duration,
    /// Per-stage wall-clock breakdown and sharded-stage throughput.
    pub timings: StageTimings,
    /// Seed tests that failed during tracing (reported, not fatal).
    pub seed_failures: Vec<(String, VmError)>,
    /// Static screener verdicts, indexed like `pairs.pairs` (including
    /// pruned pairs). `None` when no screener ran.
    pub verdicts: Option<Vec<StaticVerdict>>,
}

impl SynthesisOutput {
    /// Number of racing pairs (Table 4 "Race Pairs").
    pub fn pair_count(&self) -> usize {
        self.pairs.pairs.len()
    }

    /// Number of synthesized tests (Table 4 "Tests").
    pub fn test_count(&self) -> usize {
        self.tests.len()
    }

    /// The screener verdict covering the pair of `test_index` whose
    /// span-sorted access spans are `(span_a, span_b)` — the lookup used
    /// to stamp static provenance onto confirmed races. `None` when no
    /// screener ran or no covered pair matches.
    pub fn static_verdict_for(
        &self,
        test_index: usize,
        span_a: narada_lang::Span,
        span_b: narada_lang::Span,
    ) -> Option<StaticVerdict> {
        let verdicts = self.verdicts.as_deref()?;
        let test = self.tests.get(test_index)?;
        for &pi in &test.covered_pairs {
            let (x, y) = self.pairs.accesses_of(&self.pairs.pairs[pi]);
            let (sa, sb) = if x.span.start <= y.span.start {
                (x.span, y.span)
            } else {
                (y.span, x.span)
            };
            if sa == span_a && sb == span_b {
                return verdicts.get(pi).copied();
            }
        }
        None
    }
}

/// Runs the full synthesis pipeline on `prog` using all its `test`
/// declarations as the sequential seed suite.
pub fn synthesize(prog: &Program, mir: &MirProgram, opts: &SynthesisOptions) -> SynthesisOutput {
    synthesize_with(prog, mir, opts, None)
}

/// [`synthesize`] with an optional static pre-screener. The screener runs
/// only when `opts.static_filter` or `opts.static_rank` asks for it —
/// with both off the output is identical to the plain pipeline.
/// `MustNotRace` pairs are dropped before derivation under
/// `static_filter`; under `static_rank` the surviving pairs are derived
/// in descending suspicion order (ties keep generation order), so the
/// dedup'd suite lists the most race-prone tests first. `covered_pairs`
/// always holds *original* `pairs.pairs` indices.
pub fn synthesize_with(
    prog: &Program,
    mir: &MirProgram,
    opts: &SynthesisOptions,
    screener: Option<ScreenerFn<'_>>,
) -> SynthesisOutput {
    synthesize_observed(prog, mir, opts, screener, &Obs::new())
}

/// Tallies a screener verdict vector into per-discharge-reason counters.
fn record_verdict_metrics(obs: &Obs, verdicts: &[StaticVerdict]) {
    use crate::screen::ScreenReason;
    let reason_counter = |r: &ScreenReason| {
        obs.metrics.counter(match r {
            ScreenReason::OwnerMonitorHeld => "screen.discharged.owner_monitor",
            ScreenReason::ThreadLocalOwner => "screen.discharged.thread_local",
            ScreenReason::NoRacyContext => "screen.discharged.no_racy_context",
        })
    };
    let survivors = obs.metrics.counter("screen.survivors");
    for v in verdicts {
        match v {
            StaticVerdict::MustNotRace { reason } => reason_counter(reason).inc(),
            StaticVerdict::MayRace { .. } => survivors.inc(),
        }
    }
}

/// [`synthesize_with`], recording every stage into `obs`: wall-clock
/// gauges (`stage.*.wall_ns`), work counters (`pairs.*`, `derive.jobs`,
/// `tests.*`, `screen.*`), and hierarchical spans when tracing is on.
/// [`SynthesisOutput::timings`] is derived from the registry afterwards —
/// the registry is the single bookkeeping path.
pub fn synthesize_observed(
    prog: &Program,
    mir: &MirProgram,
    opts: &SynthesisOptions,
    screener: Option<ScreenerFn<'_>>,
    obs: &Obs,
) -> SynthesisOutput {
    let start = Instant::now();
    let root = span!(obs.tracer, "pipeline.synthesize");
    let m = &obs.metrics;

    // Stage 1: execute the seed suite, recording traces. Sequential by
    // design: the analysis consumes one totally-ordered trace (object
    // identity and event labels run across the whole suite).
    let stage = Instant::now();
    let mut sink = VecSink::new();
    let mut seed_failures = Vec::new();
    {
        let _s = span!(obs.tracer, "stage.trace");
        let mopts = MachineOptions {
            engine: opts.engine,
            ..MachineOptions::default()
        };
        // Share the cache-provided compilation when one was handed over
        // (`SynthesisOptions::code`); otherwise compile as usual.
        let mut machine = match &opts.code {
            Some(code) if opts.engine == narada_vm::Engine::Bytecode => {
                Machine::with_code(prog, mir, mopts, std::sync::Arc::clone(code))
            }
            _ => Machine::new(prog, mir, mopts),
        };
        for t in &prog.tests {
            let _run = span!(obs.tracer, "seed.run", test = t.name);
            if let Err(e) = machine.run_test(t.id, &mut sink) {
                seed_failures.push((t.name.clone(), e));
            }
        }
    }
    m.gauge("stage.trace.wall_ns").set_duration(stage.elapsed());
    m.counter("trace.events").add(sink.events.len() as u64);
    m.counter("seed.failures").add(seed_failures.len() as u64);

    // Stage 1b: the Access Analyzer.
    let stage = Instant::now();
    let analysis = {
        let _s = span!(obs.tracer, "stage.analyze");
        analyze(prog, &sink.events)
    };
    m.gauge("stage.analyze.wall_ns")
        .set_duration(stage.elapsed());
    m.counter("accesses.recorded")
        .add(analysis.accesses.len() as u64);

    // Stage 2a: the Pair Generator.
    let stage = Instant::now();
    let pairs = {
        let _s = span!(obs.tracer, "stage.pairs");
        generate_pairs(prog, &analysis, opts)
    };
    m.gauge("stage.pairs.wall_ns").set_duration(stage.elapsed());
    m.counter("pairs.generated").add(pairs.pairs.len() as u64);

    // Stage 2a': static pre-screening. `order` holds the original pair
    // indices to derive, in derivation order — the identity permutation
    // unless filtering drops or ranking reorders entries.
    let mut order: Vec<usize> = (0..pairs.pairs.len()).collect();
    let mut verdicts: Option<Vec<StaticVerdict>> = None;
    if opts.static_filter || opts.static_rank {
        let stage = Instant::now();
        let _s = span!(obs.tracer, "stage.screen");
        let screener = screener.expect("static screening requested but no screener supplied");
        let vs = screener(mir, &pairs);
        debug_assert_eq!(vs.len(), pairs.pairs.len(), "one verdict per pair");
        record_verdict_metrics(obs, &vs);
        // Coverage telemetry: every generated pair received a verdict.
        m.counter("screen.pair_coverage").add(vs.len() as u64);
        if opts.static_filter {
            order.retain(|&i| vs[i].may_race());
            m.counter("pairs.pruned")
                .add((pairs.pairs.len() - order.len()) as u64);
        }
        if opts.static_rank {
            order.sort_by_key(|&i| (std::cmp::Reverse(vs[i].score()), i));
        }
        verdicts = Some(vs);
        m.gauge("stage.screen.wall_ns")
            .set_duration(stage.elapsed());
    }

    // Stage 2b + 3: Context Deriver + plan construction. Each pair's
    // derivation is independent, so the pairs are sharded across the
    // worker pool; the dedup merge below runs in derivation order, making
    // the suite identical at any thread count (see `parallel`).
    let stage = Instant::now();
    let derive_span = span!(obs.tracer, "stage.derive", jobs = order.len());
    let derive_span_id = derive_span.id();
    let plans = parallel_map(opts.threads, &order, |_, &i| {
        let mut s = obs.tracer.span_under("derive.pair", derive_span_id);
        s.attr("pair", &i);
        derive_plan(prog, &analysis, &pairs, &pairs.pairs[i], opts)
    });
    let mut by_key: HashMap<String, usize> = HashMap::new();
    let mut tests: Vec<SynthesizedTest> = Vec::new();
    for (&i, plan) in order.iter().zip(plans) {
        let key = plan.dedup_key();
        match by_key.get(&key) {
            Some(&t) => tests[t].covered_pairs.push(i),
            None => {
                let index = tests.len();
                by_key.insert(key, index);
                tests.push(SynthesizedTest {
                    index,
                    plan,
                    covered_pairs: vec![i],
                });
            }
        }
    }
    drop(derive_span);
    m.gauge("stage.derive.wall_ns")
        .set_duration(stage.elapsed());
    m.counter("derive.jobs").add(order.len() as u64);
    m.counter("tests.synthesized").add(tests.len() as u64);
    m.counter("tests.race_expecting")
        .add(tests.iter().filter(|t| t.plan.expects_race).count() as u64);

    drop(root);
    let elapsed = start.elapsed();
    m.gauge("pipeline.total.wall_ns").set_duration(elapsed);
    SynthesisOutput {
        analysis,
        pairs,
        tests,
        elapsed,
        timings: StageTimings::from_metrics(m, effective_threads(opts.threads)),
        seed_failures,
        verdicts,
    }
}

/// One recorded concurrent execution of a synthesized test: the replayable
/// schedule plus what happened under it. Produced by [`demonstrate`];
/// serialized as a `.sched` file by the CLI's `--record`.
#[derive(Debug)]
pub struct Demonstration {
    /// Index of the test in [`SynthesisOutput::tests`].
    pub test_index: usize,
    /// The recorded schedule, with `plan-index`, `plan`, and `strategy`
    /// metadata stamped for later replay against a re-synthesized suite.
    pub schedule: Schedule,
    /// Racy-thread crashes observed during the run (themselves evidence of
    /// a thread-safety violation).
    pub failures: Vec<String>,
}

/// Runs every race-expecting synthesized test once under the configured
/// exploration strategy, recording each interleaving. Runs are sharded
/// over the worker pool; each derives its seeds from the test index, so
/// output is identical at any thread count. Tests whose setup fails
/// (capture misses) are skipped.
pub fn demonstrate(
    prog: &Program,
    mir: &MirProgram,
    output: &SynthesisOutput,
    explore: &ExploreOptions,
) -> Vec<Demonstration> {
    demonstrate_observed(prog, mir, output, explore, &Obs::new())
}

/// [`demonstrate`] recording scheduler activity (`sched.decisions`,
/// `sched.preemptions`), per-run counters (`demo.runs`, `demo.failures`),
/// and a `stage.demo.wall_ns` gauge into `obs`.
pub fn demonstrate_observed(
    prog: &Program,
    mir: &MirProgram,
    output: &SynthesisOutput,
    explore: &ExploreOptions,
    obs: &Obs,
) -> Vec<Demonstration> {
    let start = Instant::now();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let targets: Vec<&SynthesizedTest> = output
        .tests
        .iter()
        .filter(|t| t.plan.expects_race)
        .collect();
    let demo_span = span!(obs.tracer, "stage.demo", jobs = targets.len());
    let demo_span_id = demo_span.id();
    let runs = parallel_map(explore.threads, &targets, |_, test| {
        let idx = test.index as u64;
        let mut s = obs.tracer.span_under("demo.run", demo_span_id);
        s.attr("test", &test.index);
        let mut machine = Machine::new(
            prog,
            mir,
            MachineOptions {
                seed: derive_seed(explore.seed, &[STAGE_DEMO_MACHINE, idx]),
                engine: explore.engine,
                ..MachineOptions::default()
            },
        );
        let mut inner = explore.strategy.build(
            derive_seed(explore.seed, &[STAGE_DEMO_SCHED, idx]),
            explore.pct_horizon,
        );
        let mut sched = ObservedScheduler::new(&mut *inner, &obs.metrics);
        let mut sink = narada_vm::NullSink;
        crate::synth::execute_plan_recorded(
            &mut machine,
            &seeds,
            &test.plan,
            &mut sched,
            &mut sink,
            explore.budget,
        )
        .ok()
        .map(|(report, schedule)| (test.index, schedule, report.failures))
    });
    drop(demo_span);
    obs.metrics.counter("demo.runs").add(targets.len() as u64);
    obs.metrics
        .counter("demo.failures")
        .add(runs.iter().flatten().map(|(_, _, f)| f.len() as u64).sum());
    obs.metrics
        .gauge("stage.demo.wall_ns")
        .set_duration(start.elapsed());
    runs.into_iter()
        .flatten()
        .map(|(test_index, mut schedule, failures)| {
            schedule.set_meta("plan-index", test_index.to_string());
            schedule.set_meta("plan", output.tests[test_index].plan.dedup_key());
            schedule.set_meta("strategy", explore.strategy.label());
            Demonstration {
                test_index,
                schedule,
                failures,
            }
        })
        .collect()
}

/// Compiles MJ source and runs the pipeline — the one-call entry point used
/// by examples and benchmarks.
///
/// # Errors
///
/// Returns front-end diagnostics when `src` does not compile.
pub fn synthesize_source(
    src: &str,
    opts: &SynthesisOptions,
) -> Result<(Program, MirProgram, SynthesisOutput), narada_lang::Diagnostics> {
    let prog = narada_lang::compile(src)?;
    let mir = narada_lang::lower::lower_program(&prog);
    let out = synthesize(&prog, &mir, opts);
    Ok((prog, mir, out))
}

/// A seed-suite generator: given the library (and its MIR), produce a
/// sequential test suite to synthesize from. Implemented by `narada-gen`'s
/// feedback-directed engine; kept as a callback here so `narada-core`
/// stays independent of the generator crate (which depends on it).
pub type SeedGenFn<'a> = &'a (dyn Fn(&Program, &MirProgram) -> Vec<narada_lang::hir::Test> + Sync);

/// Runs the pipeline with a *generated* seed suite replacing the program's
/// own `test` declarations (`SynthesisOptions::generate_seeds`): the
/// generator's tests are renumbered and lowered against the library, and
/// the rewritten program feeds [`synthesize_observed`] unchanged. Returns
/// the rewritten program and MIR alongside the output so downstream
/// consumers (rendering, demonstration, detection) operate on the suite
/// that was actually synthesized from.
pub fn synthesize_generated(
    prog: &Program,
    mir: &MirProgram,
    opts: &SynthesisOptions,
    generator: SeedGenFn<'_>,
    screener: Option<ScreenerFn<'_>>,
    obs: &Obs,
) -> (Program, MirProgram, SynthesisOutput) {
    // Any handed-over compilation was built from the *original* MIR; the
    // generated suite rewrites the test bodies, so it must not be shared.
    let opts = &SynthesisOptions {
        code: None,
        ..opts.clone()
    };
    let generated = generator(prog, mir);
    let mut gen_prog = prog.clone();
    gen_prog.tests = generated
        .into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            t.id = narada_lang::hir::TestId(i as u32);
            t
        })
        .collect();
    let mut gen_mir = mir.clone();
    gen_mir.tests = gen_prog
        .tests
        .iter()
        .map(|t| narada_lang::lower::lower_test(&gen_prog, t))
        .collect();
    obs.metrics
        .counter("gen.seed_tests")
        .add(gen_prog.tests.len() as u64);
    let out = synthesize_observed(&gen_prog, &gen_mir, opts, screener, obs);
    (gen_prog, gen_mir, out)
}
