//! End-to-end driver: seed execution → trace analysis → pair generation →
//! context derivation → deduplicated synthesized test suite.
//!
//! This is the full Narada pipeline of Fig. 6, producing the numbers of
//! Table 4 (racing pairs, synthesized tests, synthesis time) for any MJ
//! program with a seed suite.

use crate::access::Analysis;
use crate::analyze::analyze;
use crate::context::derive_plan;
use crate::options::{ExploreOptions, SynthesisOptions};
use crate::pairs::{generate_pairs, PairSet};
use crate::parallel::{effective_threads, parallel_map, StageTimings};
use crate::screen::{ScreenerFn, StaticVerdict};
use crate::synth::SynthesizedTest;
use narada_lang::hir::Program;
use narada_lang::mir::MirProgram;
use narada_vm::rng::derive_seed;
use narada_vm::{Machine, MachineOptions, Schedule, VecSink, VmError};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Seed-derivation stage tags for demonstration runs (distinct from the
/// detect crate's 1–4 so the two layers never share a schedule).
const STAGE_DEMO_MACHINE: u64 = 11;
const STAGE_DEMO_SCHED: u64 = 12;

/// Everything the pipeline produced for one program.
#[derive(Debug)]
pub struct SynthesisOutput {
    /// The trace analysis result (access map, summaries).
    pub analysis: Analysis,
    /// Deduplicated accesses and racing pairs.
    pub pairs: PairSet,
    /// The deduplicated synthesized test suite.
    pub tests: Vec<SynthesizedTest>,
    /// Wall-clock time of the whole synthesis (trace + analysis + pairing
    /// + derivation), the paper's Table 4 "Time" column.
    pub elapsed: Duration,
    /// Per-stage wall-clock breakdown and sharded-stage throughput.
    pub timings: StageTimings,
    /// Seed tests that failed during tracing (reported, not fatal).
    pub seed_failures: Vec<(String, VmError)>,
    /// Static screener verdicts, indexed like `pairs.pairs` (including
    /// pruned pairs). `None` when no screener ran.
    pub verdicts: Option<Vec<StaticVerdict>>,
}

impl SynthesisOutput {
    /// Number of racing pairs (Table 4 "Race Pairs").
    pub fn pair_count(&self) -> usize {
        self.pairs.pairs.len()
    }

    /// Number of synthesized tests (Table 4 "Tests").
    pub fn test_count(&self) -> usize {
        self.tests.len()
    }

    /// The screener verdict covering the pair of `test_index` whose
    /// span-sorted access spans are `(span_a, span_b)` — the lookup used
    /// to stamp static provenance onto confirmed races. `None` when no
    /// screener ran or no covered pair matches.
    pub fn static_verdict_for(
        &self,
        test_index: usize,
        span_a: narada_lang::Span,
        span_b: narada_lang::Span,
    ) -> Option<StaticVerdict> {
        let verdicts = self.verdicts.as_deref()?;
        let test = self.tests.get(test_index)?;
        for &pi in &test.covered_pairs {
            let (x, y) = self.pairs.accesses_of(&self.pairs.pairs[pi]);
            let (sa, sb) = if x.span.start <= y.span.start {
                (x.span, y.span)
            } else {
                (y.span, x.span)
            };
            if sa == span_a && sb == span_b {
                return verdicts.get(pi).copied();
            }
        }
        None
    }
}

/// Runs the full synthesis pipeline on `prog` using all its `test`
/// declarations as the sequential seed suite.
pub fn synthesize(prog: &Program, mir: &MirProgram, opts: &SynthesisOptions) -> SynthesisOutput {
    synthesize_with(prog, mir, opts, None)
}

/// [`synthesize`] with an optional static pre-screener. The screener runs
/// only when `opts.static_filter` or `opts.static_rank` asks for it —
/// with both off the output is identical to the plain pipeline.
/// `MustNotRace` pairs are dropped before derivation under
/// `static_filter`; under `static_rank` the surviving pairs are derived
/// in descending suspicion order (ties keep generation order), so the
/// dedup'd suite lists the most race-prone tests first. `covered_pairs`
/// always holds *original* `pairs.pairs` indices.
pub fn synthesize_with(
    prog: &Program,
    mir: &MirProgram,
    opts: &SynthesisOptions,
    screener: Option<ScreenerFn>,
) -> SynthesisOutput {
    let start = Instant::now();
    let mut timings = StageTimings {
        threads: effective_threads(opts.threads),
        ..StageTimings::default()
    };

    // Stage 1: execute the seed suite, recording traces. Sequential by
    // design: the analysis consumes one totally-ordered trace (object
    // identity and event labels run across the whole suite).
    let stage = Instant::now();
    let mut sink = VecSink::new();
    let mut seed_failures = Vec::new();
    {
        let mut machine = Machine::new(prog, mir, MachineOptions::default());
        for t in &prog.tests {
            if let Err(e) = machine.run_test(t.id, &mut sink) {
                seed_failures.push((t.name.clone(), e));
            }
        }
    }
    timings.trace = stage.elapsed();

    // Stage 1b: the Access Analyzer.
    let stage = Instant::now();
    let analysis = analyze(prog, &sink.events);
    timings.analyze = stage.elapsed();

    // Stage 2a: the Pair Generator.
    let stage = Instant::now();
    let pairs = generate_pairs(prog, &analysis, opts);
    timings.pairs = stage.elapsed();

    // Stage 2a': static pre-screening. `order` holds the original pair
    // indices to derive, in derivation order — the identity permutation
    // unless filtering drops or ranking reorders entries.
    let mut order: Vec<usize> = (0..pairs.pairs.len()).collect();
    let mut verdicts: Option<Vec<StaticVerdict>> = None;
    if opts.static_filter || opts.static_rank {
        let stage = Instant::now();
        let screener = screener.expect("static screening requested but no screener supplied");
        let vs = screener(mir, &pairs);
        debug_assert_eq!(vs.len(), pairs.pairs.len(), "one verdict per pair");
        if opts.static_filter {
            order.retain(|&i| vs[i].may_race());
            timings.pairs_pruned = pairs.pairs.len() - order.len();
        }
        if opts.static_rank {
            order.sort_by_key(|&i| (std::cmp::Reverse(vs[i].score()), i));
        }
        verdicts = Some(vs);
        timings.screen = stage.elapsed();
    }

    // Stage 2b + 3: Context Deriver + plan construction. Each pair's
    // derivation is independent, so the pairs are sharded across the
    // worker pool; the dedup merge below runs in derivation order, making
    // the suite identical at any thread count (see `parallel`).
    let stage = Instant::now();
    let plans = parallel_map(opts.threads, &order, |_, &i| {
        derive_plan(prog, &analysis, &pairs, &pairs.pairs[i], opts)
    });
    let mut by_key: HashMap<String, usize> = HashMap::new();
    let mut tests: Vec<SynthesizedTest> = Vec::new();
    for (&i, plan) in order.iter().zip(plans) {
        let key = plan.dedup_key();
        match by_key.get(&key) {
            Some(&t) => tests[t].covered_pairs.push(i),
            None => {
                let index = tests.len();
                by_key.insert(key, index);
                tests.push(SynthesizedTest {
                    index,
                    plan,
                    covered_pairs: vec![i],
                });
            }
        }
    }
    timings.derive = stage.elapsed();
    timings.derive_jobs = order.len();

    SynthesisOutput {
        analysis,
        pairs,
        tests,
        elapsed: start.elapsed(),
        timings,
        seed_failures,
        verdicts,
    }
}

/// One recorded concurrent execution of a synthesized test: the replayable
/// schedule plus what happened under it. Produced by [`demonstrate`];
/// serialized as a `.sched` file by the CLI's `--record`.
#[derive(Debug)]
pub struct Demonstration {
    /// Index of the test in [`SynthesisOutput::tests`].
    pub test_index: usize,
    /// The recorded schedule, with `plan-index`, `plan`, and `strategy`
    /// metadata stamped for later replay against a re-synthesized suite.
    pub schedule: Schedule,
    /// Racy-thread crashes observed during the run (themselves evidence of
    /// a thread-safety violation).
    pub failures: Vec<String>,
}

/// Runs every race-expecting synthesized test once under the configured
/// exploration strategy, recording each interleaving. Runs are sharded
/// over the worker pool; each derives its seeds from the test index, so
/// output is identical at any thread count. Tests whose setup fails
/// (capture misses) are skipped.
pub fn demonstrate(
    prog: &Program,
    mir: &MirProgram,
    output: &SynthesisOutput,
    explore: &ExploreOptions,
) -> Vec<Demonstration> {
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let targets: Vec<&SynthesizedTest> = output
        .tests
        .iter()
        .filter(|t| t.plan.expects_race)
        .collect();
    let runs = parallel_map(explore.threads, &targets, |_, test| {
        let idx = test.index as u64;
        let mut machine = Machine::new(
            prog,
            mir,
            MachineOptions {
                seed: derive_seed(explore.seed, &[STAGE_DEMO_MACHINE, idx]),
                ..MachineOptions::default()
            },
        );
        let mut sched = explore.strategy.build(
            derive_seed(explore.seed, &[STAGE_DEMO_SCHED, idx]),
            explore.pct_horizon,
        );
        let mut sink = narada_vm::NullSink;
        crate::synth::execute_plan_recorded(
            &mut machine,
            &seeds,
            &test.plan,
            &mut *sched,
            &mut sink,
            explore.budget,
        )
        .ok()
        .map(|(report, schedule)| (test.index, schedule, report.failures))
    });
    runs.into_iter()
        .flatten()
        .map(|(test_index, mut schedule, failures)| {
            schedule.set_meta("plan-index", test_index.to_string());
            schedule.set_meta("plan", output.tests[test_index].plan.dedup_key());
            schedule.set_meta("strategy", explore.strategy.label());
            Demonstration {
                test_index,
                schedule,
                failures,
            }
        })
        .collect()
}

/// Compiles MJ source and runs the pipeline — the one-call entry point used
/// by examples and benchmarks.
///
/// # Errors
///
/// Returns front-end diagnostics when `src` does not compile.
pub fn synthesize_source(
    src: &str,
    opts: &SynthesisOptions,
) -> Result<(Program, MirProgram, SynthesisOutput), narada_lang::Diagnostics> {
    let prog = narada_lang::compile(src)?;
    let mir = narada_lang::lower::lower_program(&prog);
    let out = synthesize(&prog, &mir, opts);
    Ok((prog, mir, out))
}
