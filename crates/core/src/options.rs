//! Tuning knobs for the synthesis pipeline, including the ablation flags
//! called out in DESIGN.md.

use narada_vm::{BcProgram, Engine, ScheduleStrategy};
use std::sync::Arc;

/// Options controlling pair generation, context derivation, and synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// **A1** — when `true`, an access is considered unprotected only when
    /// *no* lock at all is held. The paper's default (`false`) is the
    /// conservative choice: any access whose owner's monitor is not held is
    /// unprotected, even if some other lock guards it (§4).
    pub strict_unprotected: bool,
    /// **A2** — attempt prefix sharing when the full owner path cannot be
    /// installed (§4). Disabling drops the 0-race tests of Fig. 14.
    pub prefix_fallback: bool,
    /// **A3** — reject sharings that force the two racy accesses to hold a
    /// common lock (§3.3's "receivers must be distinct" reasoning).
    /// Disabling makes lock-on-receiver pairs unconfirmable.
    pub lockset_aware: bool,
    /// Upper bound on racing pairs per field group, to keep degenerate
    /// classes from exploding (the paper reports no such cap; ours is high
    /// enough to never bind on the corpus).
    pub max_pairs_per_key: usize,
    /// Maximum recursion depth for the `Q` setter derivation.
    pub max_setter_depth: usize,
    /// Worker threads for the sharded pipeline stages (`0` = one per
    /// core). Results are identical at any value — see
    /// [`crate::parallel`] — so this is purely a throughput knob.
    pub threads: usize,
    /// Drop pairs the static pre-screener proves can never race
    /// (`MustNotRace`) before context derivation. Off by default: the
    /// paper's pipeline derives every generated pair.
    pub static_filter: bool,
    /// Order pairs by descending static suspicion score before context
    /// derivation, so the most race-prone tests come first in the suite.
    /// Off by default (pairs stay in generation order).
    pub static_rank: bool,
    /// Replace the program's own `test` declarations with a generated
    /// seed suite before synthesis (`narada synth --generate-seeds`;
    /// see [`crate::pipeline::synthesize_generated`]). Off by default —
    /// the paper's pipeline consumes hand-written seed tests.
    pub generate_seeds: bool,
    /// Execution engine for every machine the pipeline builds (seed runs,
    /// setter probing, demonstration). Both engines are trace-equivalent
    /// — see the engine differential suite — so this is purely a
    /// throughput knob (the CLI's `--engine`).
    pub engine: Engine,
    /// Pre-compiled bytecode for the `(Program, MirProgram)` the
    /// pipeline will run — an artifact-cache hand-off (`narada serve`):
    /// when set and `engine` is [`Engine::Bytecode`], every machine the
    /// pipeline builds shares this compilation instead of recompiling.
    /// Must have been compiled from exactly the program passed alongside;
    /// [`crate::pipeline::synthesize_generated`] drops it because it
    /// rewrites the MIR. Ignored under [`Engine::TreeWalk`]. Purely a
    /// throughput knob — compilation is deterministic, so output is
    /// byte-identical with or without it.
    pub code: Option<Arc<BcProgram>>,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            strict_unprotected: false,
            prefix_fallback: true,
            lockset_aware: true,
            max_pairs_per_key: 256,
            max_setter_depth: 4,
            threads: 0,
            static_filter: false,
            static_rank: false,
            generate_seeds: false,
            engine: Engine::TreeWalk,
            code: None,
        }
    }
}

/// Options for the schedule-exploration engine: how synthesized tests are
/// *executed* concurrently (as opposed to how they are derived).
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Scheduler family for exploration runs (the CLI's `--strategy`).
    pub strategy: ScheduleStrategy,
    /// PCT change-point sampling horizon (expected scheduling decisions
    /// per run; ignored by the other strategies).
    pub pct_horizon: u64,
    /// Base seed; each run derives its own from `(seed, test index)`.
    pub seed: u64,
    /// Step budget per concurrent run.
    pub budget: u64,
    /// Worker threads for sharded demonstration runs (`0` = one per
    /// core); results are identical at any value.
    pub threads: usize,
    /// Execution engine for exploration machines (trace-equivalent to
    /// tree-walk; a throughput knob).
    pub engine: Engine,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            strategy: ScheduleStrategy::Random,
            pct_horizon: 1_000,
            seed: 0xdecaf,
            budget: 2_000_000,
            threads: 0,
            engine: Engine::TreeWalk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_defaults() {
        let e = ExploreOptions::default();
        assert_eq!(e.strategy, ScheduleStrategy::Random);
        assert!(e.pct_horizon > 0);
    }

    #[test]
    fn defaults_match_paper() {
        let o = SynthesisOptions::default();
        assert!(!o.strict_unprotected, "paper is conservative by default");
        assert!(o.prefix_fallback);
        assert!(o.lockset_aware);
        assert!(
            !o.static_filter && !o.static_rank,
            "static screening is opt-in; the paper derives every pair"
        );
    }
}
