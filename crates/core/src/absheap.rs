//! The abstract heap `H` of paper §3.1, built lazily (§4) while scanning a
//! sequential execution trace.
//!
//! `H` maps *symbols* — `(invocation, register)` pairs — to abstract
//! locations carrying the paper's two flags:
//!
//! * **controllability** (`C`/`NC`): the location holds a value the client
//!   can influence (client-allocated object, client-invoke receiver or
//!   argument, or anything reachable from them), as opposed to
//!   library-internal allocations, constants, `rand()` results, and
//!   arithmetic;
//! * **lock state** (`L`/`U`): some thread currently holds the location's
//!   monitor.
//!
//! Aliasing is tracked by *location identity*: because trace events carry
//! concrete object ids, two symbols alias exactly when they map to the same
//! location — this realizes the paper's `bind` deep-walk exactly (aliases
//! share a location, so a field update through one alias is seen through
//! all of them, cf. the `x.f := y` rule of Fig. 7).

use crate::path::PathField;
use narada_lang::mir::VarId;
use narada_vm::{InvId, ObjId};
use std::collections::HashMap;

/// An abstract heap location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub u32);

impl LocId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-location flags.
#[derive(Debug, Clone, Copy)]
pub struct LocState {
    /// `C` (true) or `NC` (false).
    pub controllable: bool,
    /// `L` (true) or `U` (false).
    pub locked: bool,
}

/// The abstract heap. See the module docs.
#[derive(Debug, Default)]
pub struct AbsHeap {
    locs: Vec<LocState>,
    /// Symbol bindings: `(inv, var) → loc`.
    vars: HashMap<(InvId, VarId), LocId>,
    /// Field edges: `(owner loc, field) → loc` (all array elements collapse
    /// onto one `Elem` edge).
    fields: HashMap<(LocId, PathField), LocId>,
    /// Concrete objects get exactly one location each.
    objs: HashMap<ObjId, LocId>,
}

impl AbsHeap {
    /// Creates an empty abstract heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of locations created so far.
    pub fn loc_count(&self) -> usize {
        self.locs.len()
    }

    fn fresh(&mut self, controllable: bool) -> LocId {
        let id = LocId(self.locs.len() as u32);
        self.locs.push(LocState {
            controllable,
            locked: false,
        });
        id
    }

    /// Flags of a location.
    pub fn state(&self, loc: LocId) -> LocState {
        self.locs[loc.index()]
    }

    /// Whether a location is controllable (`C`).
    pub fn controllable(&self, loc: LocId) -> bool {
        self.locs[loc.index()].controllable
    }

    /// Whether a location is locked (`L`).
    pub fn locked(&self, loc: LocId) -> bool {
        self.locs[loc.index()].locked
    }

    /// Location of a concrete object, created `NC` on first sight (the
    /// caller upgrades controllability when the `R` bootstrap applies).
    pub fn loc_of_obj(&mut self, obj: ObjId) -> LocId {
        if let Some(&l) = self.objs.get(&obj) {
            return l;
        }
        let l = self.fresh(false);
        self.objs.insert(obj, l);
        l
    }

    /// Location of an object created in the given controllability context
    /// (used for `Alloc` events: client allocs are `C`, library allocs `NC`
    /// — the paper's *alloc* rule).
    pub fn alloc_obj(&mut self, obj: ObjId, controllable: bool) -> LocId {
        let l = self.loc_of_obj(obj);
        if controllable {
            self.locs[l.index()].controllable = true;
        }
        l
    }

    /// Binds a symbol to a location (the *assign*/`bind` rule).
    pub fn bind_var(&mut self, inv: InvId, var: VarId, loc: LocId) {
        self.vars.insert((inv, var), loc);
    }

    /// The location a symbol is bound to, if any.
    pub fn var_loc(&self, inv: InvId, var: VarId) -> Option<LocId> {
        self.vars.get(&(inv, var)).copied()
    }

    /// Binds a symbol to a fresh `NC` location (opaque definitions:
    /// constants, `rand()`, arithmetic, `length`).
    pub fn bind_opaque(&mut self, inv: InvId, var: VarId) -> LocId {
        let l = self.fresh(false);
        self.bind_var(inv, var, l);
        l
    }

    /// The field edge `owner.field`, lazily created with the owner's flags
    /// (§4 lazy initialization: "for an unseen variable, we assign the
    /// flags based on its owner state").
    pub fn field_loc(&mut self, owner: LocId, field: PathField) -> LocId {
        if let Some(&l) = self.fields.get(&(owner, field)) {
            return l;
        }
        let inherit = self.locs[owner.index()].controllable;
        let l = self.fresh(inherit);
        self.fields.insert((owner, field), l);
        l
    }

    /// Overwrites the field edge (the `x.f := y` rule: every alias of `x`
    /// shares `x`'s location, so the single edge update covers them all).
    pub fn set_field_loc(&mut self, owner: LocId, field: PathField, value: LocId) {
        self.fields.insert((owner, field), value);
    }

    /// Reads an existing field edge without creating it.
    pub fn field_loc_existing(&self, owner: LocId, field: PathField) -> Option<LocId> {
        self.fields.get(&(owner, field)).copied()
    }

    /// All existing outgoing field edges of a location.
    pub fn field_edges(&self, owner: LocId) -> Vec<(PathField, LocId)> {
        let mut edges: Vec<_> = self
            .fields
            .iter()
            .filter(|((o, _), _)| *o == owner)
            .map(|((_, f), &l)| (*f, l))
            .collect();
        edges.sort();
        edges
    }

    /// Marks a location and everything reachable from it controllable —
    /// the paper's `R` bootstrap at a client invocation, applied to the
    /// receiver and every argument. Lazily created descendants inherit the
    /// flag automatically, so marking the currently known graph suffices.
    pub fn mark_controllable_deep(&mut self, root: LocId) {
        let mut stack = vec![root];
        let mut seen = std::collections::HashSet::new();
        while let Some(l) = stack.pop() {
            if !seen.insert(l) {
                continue;
            }
            self.locs[l.index()].controllable = true;
            for (_, child) in self.field_edges(l) {
                stack.push(child);
            }
        }
    }

    /// Sets the lock flag of a location (the *lock*/*unlock* rules; aliases
    /// share the location, so all see the flag).
    pub fn set_locked(&mut self, loc: LocId, locked: bool) {
        self.locs[loc.index()].locked = locked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use narada_lang::hir::FieldId;

    fn f(id: u32) -> PathField {
        PathField::Field(FieldId(id))
    }

    #[test]
    fn objects_get_one_location() {
        let mut h = AbsHeap::new();
        let a = h.loc_of_obj(ObjId(1));
        let b = h.loc_of_obj(ObjId(1));
        let c = h.loc_of_obj(ObjId(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_field_inherits_owner_flags() {
        let mut h = AbsHeap::new();
        let c_owner = h.alloc_obj(ObjId(1), true);
        let nc_owner = h.alloc_obj(ObjId(2), false);
        let c_field = h.field_loc(c_owner, f(0));
        let nc_field = h.field_loc(nc_owner, f(0));
        assert!(h.controllable(c_field));
        assert!(!h.controllable(nc_field));
    }

    #[test]
    fn field_overwrite_changes_edge() {
        let mut h = AbsHeap::new();
        let owner = h.alloc_obj(ObjId(1), true);
        let first = h.field_loc(owner, f(0));
        let other = h.alloc_obj(ObjId(9), false);
        h.set_field_loc(owner, f(0), other);
        assert_eq!(h.field_loc(owner, f(0)), other);
        assert_ne!(h.field_loc(owner, f(0)), first);
    }

    #[test]
    fn aliasing_via_shared_location() {
        // x := y ⇒ same loc; then x.f update is visible via y.f.
        let mut h = AbsHeap::new();
        let inv = InvId(0);
        let obj = h.alloc_obj(ObjId(1), true);
        h.bind_var(inv, VarId(0), obj);
        h.bind_var(inv, VarId(1), obj); // the copy
        let via_x = h.var_loc(inv, VarId(0)).unwrap();
        let via_y = h.var_loc(inv, VarId(1)).unwrap();
        assert_eq!(via_x, via_y);
        let target = h.alloc_obj(ObjId(2), false);
        h.set_field_loc(via_x, f(3), target);
        assert_eq!(h.field_loc(via_y, f(3)), target);
    }

    #[test]
    fn mark_controllable_deep_walks_edges() {
        let mut h = AbsHeap::new();
        let root = h.alloc_obj(ObjId(1), false);
        let child = h.field_loc(root, f(0)); // NC (inherits)
        let grand = h.field_loc(child, f(1));
        assert!(!h.controllable(grand));
        h.mark_controllable_deep(root);
        assert!(h.controllable(root));
        assert!(h.controllable(child));
        assert!(h.controllable(grand));
    }

    #[test]
    fn mark_controllable_handles_cycles() {
        let mut h = AbsHeap::new();
        let a = h.alloc_obj(ObjId(1), false);
        let b = h.alloc_obj(ObjId(2), false);
        h.set_field_loc(a, f(0), b);
        h.set_field_loc(b, f(0), a); // cycle
        h.mark_controllable_deep(a);
        assert!(h.controllable(a));
        assert!(h.controllable(b));
    }

    #[test]
    fn lock_flag_round_trips() {
        let mut h = AbsHeap::new();
        let l = h.alloc_obj(ObjId(1), true);
        assert!(!h.locked(l));
        h.set_locked(l, true);
        assert!(h.locked(l));
        h.set_locked(l, false);
        assert!(!h.locked(l));
    }

    #[test]
    fn opaque_bindings_are_nc() {
        let mut h = AbsHeap::new();
        let l = h.bind_opaque(InvId(0), VarId(5));
        assert!(!h.controllable(l));
        assert_eq!(h.var_loc(InvId(0), VarId(5)), Some(l));
    }

    #[test]
    fn elem_edges_collapse() {
        let mut h = AbsHeap::new();
        let arr = h.alloc_obj(ObjId(1), true);
        let e1 = h.field_loc(arr, PathField::Elem);
        let e2 = h.field_loc(arr, PathField::Elem);
        assert_eq!(e1, e2, "all array elements share one abstract edge");
    }
}
