//! The Context Deriver (paper §3.3): given a racy access pair, derive the
//! method invocations — with appropriate object sharing — that drive two
//! receiver graphs into a state where the racy field owners alias a single
//! shared object while the two accesses hold no common lock.
//!
//! The derivation implements the `Q` query rules of Fig. 10:
//!
//! * **set** — a method whose `D` summary assigns a client parameter to the
//!   needed field;
//! * **concat** — compose a setter for the outer field with a setter for
//!   the inner field on a fresh intermediate object (Fig. 12);
//! * **deep-set** — a single method that assigns the whole dereference
//!   chain;
//!
//! plus the §3.3 recursive case where a setter's source is a *field of* a
//! parameter (`bar`'s `Ithis.x ⤳ Iz.w`, satisfied by first invoking `baz`),
//! and a *builder* variant using the Fig. 9 return summaries (a factory or
//! constructor whose returned object exposes a parameter at the needed
//! path — the hazelcast `createSafeWriteBehindQueue` pattern of Fig. 3).

use crate::access::{AccessRecord, Analysis, RaceKey};
use crate::options::SynthesisOptions;
use crate::pairs::{PairSet, RacePair};
use crate::path::{IPath, PathField, PathRoot};
use narada_lang::hir::{MethodId, Program, Ty};
use narada_vm::Label;
use std::fmt;

/// Which value of a capture a reference picks out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The receiver at the captured call site.
    Recv,
    /// The i-th argument.
    Arg(usize),
}

/// A reference to an object (or scalar) materialized by the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjRef {
    /// A value captured by suspending a seed-test run before a call
    /// (Algorithm 1's `collectObjects`).
    Capture {
        /// Index into [`TestPlan::captures`].
        capture: usize,
        /// Which value at the call site.
        slot: Slot,
    },
    /// The object produced by a builder call (factory / constructor).
    Built {
        /// Index into [`TestPlan::builders`].
        builder: usize,
    },
}

/// One planned invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCall {
    /// The method to invoke (may be a constructor, §4).
    pub method: MethodId,
    /// Receiver (`None` for static methods).
    pub recv: Option<ObjRef>,
    /// Arguments, in order.
    pub args: Vec<ObjRef>,
    /// §4 partial invocation: suspend the call on a separate thread right
    /// after the write at this site (and once all its monitors are
    /// released), instead of running to completion.
    pub stop_after: Option<narada_lang::Span>,
}

/// One `collectObjects` run: suspend a seed test before the first
/// client-level call of `method` and capture receiver + arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureSpec {
    /// The method whose call site is captured.
    pub method: MethodId,
}

/// A complete synthesized-test plan (the output of Algorithm 1's inputs:
/// `mr`, `mr'`, `Qr`, `Qr'` plus the object-sharing constraints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPlan {
    /// Object-collection runs, in order.
    pub captures: Vec<CaptureSpec>,
    /// Builder invocations (factories/constructors), run before setters.
    pub builders: Vec<PlanCall>,
    /// Context-setter invocations, run sequentially on the main thread.
    pub setters: Vec<PlanCall>,
    /// The two racy invocations, spawned concurrently.
    pub racy: [PlanCall; 2],
    /// The field the plan aims to race on.
    pub key: RaceKey,
    /// Labels of the two seed accesses the plan was derived from.
    pub labels: (Label, Label),
    /// Anchor paths where sharing is installed (`None` for degenerate
    /// fallback plans).
    pub anchors: Option<(IPath, IPath)>,
    /// Whether the deriver believes the plan can manifest the race
    /// (`false` for §4 fallback plans, which still count as synthesized
    /// tests — they populate Fig. 14's zero-race buckets).
    pub expects_race: bool,
}

impl TestPlan {
    /// A stable deduplication key: plans with the same (unordered) racy
    /// method pair, anchor structure, and setter/builder methods are the
    /// same test (paper §5: multiple pairs per test).
    pub fn dedup_key(&self) -> String {
        let (a1, a2) = match &self.anchors {
            Some((x, y)) => (Some(x.clone()), Some(y.clone())),
            None => (None, None),
        };
        let mut sides = [
            format!("{:?}@{:?}", self.racy[0].method, a1),
            format!("{:?}@{:?}", self.racy[1].method, a2),
        ];
        sides.sort();
        let mut s = format!("{}|{}", sides[0], sides[1]);
        let mut aux: Vec<String> = self
            .setters
            .iter()
            .map(|c| format!("s{:?}", c.method))
            .chain(self.builders.iter().map(|b| format!("b{:?}", b.method)))
            .collect();
        aux.sort();
        for a in aux {
            s.push('|');
            s.push_str(&a);
        }
        s
    }

    /// Renders the plan as a readable pseudo-client program.
    pub fn render(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// race on {:?} (labels {} / {})",
            self.key, self.labels.0, self.labels.1
        );
        for (i, c) in self.captures.iter().enumerate() {
            let _ = writeln!(
                out,
                "var cap{i} = collectObjects({});   // suspend seed before {0}",
                prog.qualified_name(c.method)
            );
        }
        for (i, b) in self.builders.iter().enumerate() {
            let _ = writeln!(out, "var built{i} = {};", render_call(prog, b));
        }
        for s in &self.setters {
            let _ = writeln!(out, "{};                 // context", render_call(prog, s));
        }
        for (i, r) in self.racy.iter().enumerate() {
            let _ = writeln!(
                out,
                "spawn {{ {}; }}      // thread {}",
                render_call(prog, r),
                i + 1
            );
        }
        out
    }
}

fn render_call(prog: &Program, c: &PlanCall) -> String {
    let args: Vec<String> = c.args.iter().map(|a| a.to_string()).collect();
    match c.recv {
        Some(r) => format!("{r}.{}({})", prog.method(c.method).name, args.join(", ")),
        None => format!("{}({})", prog.qualified_name(c.method), args.join(", ")),
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjRef::Capture {
                capture,
                slot: Slot::Recv,
            } => write!(f, "cap{capture}.recv"),
            ObjRef::Capture {
                capture,
                slot: Slot::Arg(i),
            } => write!(f, "cap{capture}.arg{i}"),
            ObjRef::Built { builder } => write!(f, "built{builder}"),
        }
    }
}

/// Derives a [`TestPlan`] for one racing pair.
pub fn derive_plan(
    prog: &Program,
    analysis: &Analysis,
    pairs: &PairSet,
    pair: &RacePair,
    opts: &SynthesisOptions,
) -> TestPlan {
    let (x, y) = pairs.accesses_of(pair);
    let mut deriver = Deriver {
        prog,
        analysis,
        opts,
        captures: Vec::new(),
        builders: Vec::new(),
        setters: Vec::new(),
    };
    deriver.derive(x, y, pair)
}

struct Deriver<'a> {
    prog: &'a Program,
    analysis: &'a Analysis,
    opts: &'a SynthesisOptions,
    captures: Vec<CaptureSpec>,
    builders: Vec<PlanCall>,
    setters: Vec<PlanCall>,
}

impl Deriver<'_> {
    fn capture(&mut self, method: MethodId) -> usize {
        self.captures.push(CaptureSpec { method });
        self.captures.len() - 1
    }

    /// Default racy call: every slot comes from its own fresh capture.
    fn racy_call(&mut self, acc: &AccessRecord) -> (PlanCall, usize) {
        let m = self.prog.method(acc.method);
        let cap = self.capture(acc.method);
        let recv = if m.is_static {
            None
        } else {
            Some(ObjRef::Capture {
                capture: cap,
                slot: Slot::Recv,
            })
        };
        let args = (0..m.num_params)
            .map(|i| ObjRef::Capture {
                capture: cap,
                slot: Slot::Arg(i),
            })
            .collect();
        (
            PlanCall {
                method: acc.method,
                recv,
                args,
                stop_after: None,
            },
            cap,
        )
    }

    fn derive(&mut self, x: &AccessRecord, y: &AccessRecord, pair: &RacePair) -> TestPlan {
        let p1 = x.path.clone().expect("paired access has a path");
        let p2 = y.path.clone().expect("paired access has a path");
        let (o1, _) = p1.split_last().expect("path has a leaf");
        let (o2, _) = p2.split_last().expect("path has a leaf");

        let (mut call1, _c1) = self.racy_call(x);
        let (mut call2, _c2) = self.racy_call(y);

        // Try anchors from the owner itself toward shallower suffixes.
        let max_s = o1.common_suffix_len(&o2);
        for s in 0..=max_s {
            let q1 = o1.drop_suffix(s);
            let q2 = o2.drop_suffix(s);
            if self.opts.lockset_aware && lock_collision(&x.locks, &y.locks, &q1, &q2) {
                continue;
            }
            let snapshot = (self.captures.len(), self.builders.len(), self.setters.len());
            if let Some(()) = self.build_sharing(x, y, &q1, &q2, &mut call1, &mut call2) {
                return TestPlan {
                    captures: std::mem::take(&mut self.captures),
                    builders: std::mem::take(&mut self.builders),
                    setters: std::mem::take(&mut self.setters),
                    racy: [call1, call2],
                    key: pair.key,
                    labels: (x.label, y.label),
                    anchors: Some((q1, q2)),
                    expects_race: true,
                };
            }
            // Roll back partial work from the failed attempt.
            self.captures.truncate(snapshot.0);
            self.builders.truncate(snapshot.1);
            self.setters.truncate(snapshot.2);
        }

        // §4 prefix fallback: share the shallowest assignable prefix even
        // though the race may not manifest.
        if self.opts.prefix_fallback {
            for k in (1..=o1.fields.len().min(o2.fields.len())).rev() {
                let q1 = IPath {
                    root: o1.root,
                    fields: o1.fields[..k].to_vec(),
                };
                let q2 = IPath {
                    root: o2.root,
                    fields: o2.fields[..k].to_vec(),
                };
                let t1 = self.path_type(x.method, &q1);
                let t2 = self.path_type(y.method, &q2);
                let compatible = match (&t1, &t2) {
                    (Some(a), Some(b)) => self.prog.tys_compatible(a, b),
                    _ => false,
                };
                if !compatible {
                    continue;
                }
                let snapshot = (self.captures.len(), self.builders.len(), self.setters.len());
                if self
                    .build_sharing(x, y, &q1, &q2, &mut call1, &mut call2)
                    .is_some()
                {
                    return TestPlan {
                        captures: std::mem::take(&mut self.captures),
                        builders: std::mem::take(&mut self.builders),
                        setters: std::mem::take(&mut self.setters),
                        racy: [call1, call2],
                        key: pair.key,
                        labels: (x.label, y.label),
                        anchors: Some((q1, q2)),
                        expects_race: false,
                    };
                }
                self.captures.truncate(snapshot.0);
                self.builders.truncate(snapshot.1);
                self.setters.truncate(snapshot.2);
            }
        }

        // Degenerate plan: independent objects, no sharing.
        TestPlan {
            captures: std::mem::take(&mut self.captures),
            builders: std::mem::take(&mut self.builders),
            setters: std::mem::take(&mut self.setters),
            racy: [call1, call2],
            key: pair.key,
            labels: (x.label, y.label),
            anchors: None,
            expects_race: false,
        }
    }

    /// Builds the sharing context: install one shared object at `q1` of
    /// thread 1's root and `q2` of thread 2's root.
    fn build_sharing(
        &mut self,
        x: &AccessRecord,
        y: &AccessRecord,
        q1: &IPath,
        q2: &IPath,
        call1: &mut PlanCall,
        call2: &mut PlanCall,
    ) -> Option<()> {
        // Determine the shared object's source.
        match (q1.fields.is_empty(), q2.fields.is_empty()) {
            (true, true) => {
                // Share the roots directly: thread 2's root slot becomes
                // thread 1's object.
                let shared = root_ref(call1, q1.root)?;
                set_root_ref(call2, q2.root, shared)?;
                Some(())
            }
            (true, false) => {
                let shared = root_ref(call1, q1.root)?;
                self.install(y.method, call2, q2, shared)
            }
            (false, true) => {
                let shared = root_ref(call2, q2.root)?;
                self.install(x.method, call1, q1, shared)
            }
            (false, false) => {
                // Derive thread 1's install first; it defines the shared
                // object (the collected argument of the innermost setter,
                // as in Table 2), which thread 2 then reuses.
                let shared = self.install_defining(x.method, call1, q1)?;
                self.install(y.method, call2, q2, shared)?;
                Some(())
            }
        }
    }

    /// Installs `shared` at path `q` of a racy call's root object,
    /// appending setter/builder calls as needed.
    fn install(
        &mut self,
        method: MethodId,
        call: &mut PlanCall,
        q: &IPath,
        shared: ObjRef,
    ) -> Option<()> {
        let root = root_ref(call, q.root)?;
        let root_ty = self.root_type(method, q.root)?;
        if let Some(()) = self.derive_setters(root, &root_ty, &q.fields, Some(shared), 0) {
            return Some(());
        }
        // Builder route: replace the root object entirely with one built
        // so that `built.q == shared`.
        if let Some(built) = self.derive_builder(&root_ty, &q.fields, shared) {
            set_root_ref(call, q.root, built)?;
            return Some(());
        }
        None
    }

    /// Like [`install`], but the shared object is *defined* by this side:
    /// the collected argument fed to the innermost assignment.
    fn install_defining(
        &mut self,
        method: MethodId,
        call: &mut PlanCall,
        q: &IPath,
    ) -> Option<ObjRef> {
        let root = root_ref(call, q.root)?;
        let root_ty = self.root_type(method, q.root)?;
        if let Some(shared) = self.derive_setters_defining(root, &root_ty, &q.fields, 0) {
            return Some(shared);
        }
        // Builder route with a fresh shared object drawn from the
        // builder's own captured argument.
        let (built, shared) = self.derive_builder_defining(&root_ty, &q.fields)?;
        set_root_ref(call, q.root, built)?;
        Some(shared)
    }

    fn root_type(&self, method: MethodId, root: PathRoot) -> Option<Ty> {
        let m = self.prog.method(method);
        match root {
            PathRoot::This => Some(Ty::Class(m.owner)),
            PathRoot::Param(i) => m.param_tys().get(i).map(|t| (*t).clone()),
            PathRoot::Ret => None,
        }
    }

    fn path_type(&self, method: MethodId, path: &IPath) -> Option<Ty> {
        let mut ty = self.root_type(method, path.root)?;
        for pf in &path.fields {
            ty = match pf {
                PathField::Field(f) => self.prog.field(*f).ty.clone(),
                PathField::Elem => match ty {
                    Ty::Array(e) => *e,
                    _ => return None,
                },
            };
        }
        Some(ty)
    }

    /// The `Q` rules, with `shared` known. Appends planned setter calls
    /// that make `target.chain == shared` and returns `Some(())` on
    /// success.
    fn derive_setters(
        &mut self,
        target: ObjRef,
        target_ty: &Ty,
        chain: &[PathField],
        shared: Option<ObjRef>,
        depth: usize,
    ) -> Option<()> {
        self.derive_setters_impl(target, target_ty, chain, shared, depth)
            .map(|_| ())
    }

    /// `Q` with the shared object *defined* by the innermost collected
    /// argument.
    fn derive_setters_defining(
        &mut self,
        target: ObjRef,
        target_ty: &Ty,
        chain: &[PathField],
        depth: usize,
    ) -> Option<ObjRef> {
        self.derive_setters_impl(target, target_ty, chain, None, depth)
    }

    /// Shared implementation. When `shared` is `None`, the innermost
    /// assignment's collected argument becomes the shared object and is
    /// returned; when `Some`, that position is overridden with it and it
    /// is returned unchanged.
    fn derive_setters_impl(
        &mut self,
        target: ObjRef,
        target_ty: &Ty,
        chain: &[PathField],
        shared: Option<ObjRef>,
        depth: usize,
    ) -> Option<ObjRef> {
        if depth > self.opts.max_setter_depth || chain.is_empty() {
            return None;
        }
        // Array-element chains cannot be installed by setters; the array
        // object itself must be shared one level up.
        if chain.iter().any(|pf| matches!(pf, PathField::Elem)) {
            return None;
        }

        // deep-set / set: one method assigns the whole chain.
        let candidates: Vec<_> = self
            .analysis
            .setters
            .iter()
            .filter(|s| {
                s.lhs.root == PathRoot::This
                    && s.lhs.fields == chain
                    && !self.prog.method(s.method).is_static
                    && self
                        .prog
                        .tys_compatible(&Ty::Class(self.prog.method(s.method).owner), target_ty)
            })
            .cloned()
            .collect();
        for s in &candidates {
            let snapshot = (self.captures.len(), self.setters.len(), self.builders.len());
            if let Some(result) = self.apply_summary_rhs(target, s, shared, depth) {
                return Some(result);
            }
            self.captures.truncate(snapshot.0);
            self.setters.truncate(snapshot.1);
            self.builders.truncate(snapshot.2);
        }

        // concat (Fig. 12): install the first field with an intermediate
        // object, then set the rest of the chain on that object first.
        if chain.len() >= 2 {
            let head = &chain[..1];
            let head_ty = match chain[0] {
                PathField::Field(f) => self.prog.field(f).ty.clone(),
                PathField::Elem => return None,
            };
            let head_setters: Vec<_> = self
                .analysis
                .setters
                .iter()
                .filter(|s| {
                    s.lhs.root == PathRoot::This
                        && s.lhs.fields == head
                        && s.rhs.fields.is_empty()
                        && matches!(s.rhs.root, PathRoot::Param(_))
                        && self
                            .prog
                            .tys_compatible(&Ty::Class(self.prog.method(s.method).owner), target_ty)
                })
                .cloned()
                .collect();
            for s in &head_setters {
                let PathRoot::Param(j) = s.rhs.root else {
                    continue;
                };
                let snapshot = (self.captures.len(), self.setters.len(), self.builders.len());
                // Intermediate object: the collected argument of the head
                // setter.
                let cap = self.capture(s.method);
                let aux = ObjRef::Capture {
                    capture: cap,
                    slot: Slot::Arg(j),
                };
                // Inner chain first (paper order: z.baz(x); a.bar(z);).
                if let Some(result) =
                    self.derive_setters_impl(aux, &head_ty, &chain[1..], shared, depth + 1)
                {
                    let stop = s.overwritten.then_some(s.span);
                    self.push_setter_call(s.method, cap, target, j, aux, stop);
                    return Some(result);
                }
                self.captures.truncate(snapshot.0);
                self.setters.truncate(snapshot.1);
                self.builders.truncate(snapshot.2);
            }
        }
        None
    }

    /// Applies one setter summary: handles `rhs = I_pj` (pass shared
    /// directly) and `rhs = I_pj.h…` (recursively prepare the argument
    /// object, the `baz`-before-`bar` case).
    fn apply_summary_rhs(
        &mut self,
        target: ObjRef,
        s: &crate::access::SetterSummary,
        shared: Option<ObjRef>,
        depth: usize,
    ) -> Option<ObjRef> {
        let PathRoot::Param(j) = s.rhs.root else {
            return None;
        };
        let cap = self.capture(s.method);
        if s.rhs.fields.is_empty() {
            // Direct: arg j is the shared object.
            let shared = shared.unwrap_or(ObjRef::Capture {
                capture: cap,
                slot: Slot::Arg(j),
            });
            let stop = s.overwritten.then_some(s.span);
            self.push_setter_call(s.method, cap, target, j, shared, stop);
            Some(shared)
        } else {
            // The source is a field of the parameter: prepare an argument
            // object whose `rhs.fields` path holds the shared object.
            let m = self.prog.method(s.method);
            let param_ty = (*m.param_tys().get(j)?).clone();
            let aux = ObjRef::Capture {
                capture: cap,
                slot: Slot::Arg(j),
            };
            let result =
                self.derive_setters_impl(aux, &param_ty, &s.rhs.fields, shared, depth + 1)?;
            let stop = s.overwritten.then_some(s.span);
            self.push_setter_call(s.method, cap, target, j, aux, stop);
            Some(result)
        }
    }

    fn push_setter_call(
        &mut self,
        method: MethodId,
        cap: usize,
        target: ObjRef,
        special_arg: usize,
        special_val: ObjRef,
        stop_after: Option<narada_lang::Span>,
    ) {
        let m = self.prog.method(method);
        let args = (0..m.num_params)
            .map(|i| {
                if i == special_arg {
                    special_val
                } else {
                    ObjRef::Capture {
                        capture: cap,
                        slot: Slot::Arg(i),
                    }
                }
            })
            .collect();
        self.setters.push(PlanCall {
            method,
            recv: Some(target),
            args,
            stop_after,
        });
    }

    /// Builder route: find a return summary `I_r.chain ⤳ I_pj` on a method
    /// returning something compatible with `root_ty`, and build the root by
    /// calling it with `shared` in position `j`.
    fn derive_builder(
        &mut self,
        root_ty: &Ty,
        chain: &[PathField],
        shared: ObjRef,
    ) -> Option<ObjRef> {
        self.derive_builder_impl(root_ty, chain, Some(shared))
            .map(|(built, _)| built)
    }

    fn derive_builder_defining(
        &mut self,
        root_ty: &Ty,
        chain: &[PathField],
    ) -> Option<(ObjRef, ObjRef)> {
        self.derive_builder_impl(root_ty, chain, None)
    }

    fn derive_builder_impl(
        &mut self,
        root_ty: &Ty,
        chain: &[PathField],
        shared: Option<ObjRef>,
    ) -> Option<(ObjRef, ObjRef)> {
        let candidates: Vec<_> = self
            .analysis
            .returns
            .iter()
            .filter(|r| {
                r.ret_path.fields == chain
                    && r.src.fields.is_empty()
                    && matches!(r.src.root, PathRoot::Param(_))
                    && self
                        .builder_result_ty(r.method)
                        .is_some_and(|t| self.prog.tys_compatible(&t, root_ty))
            })
            .cloned()
            .collect();
        let r = candidates.first()?;
        let PathRoot::Param(j) = r.src.root else {
            return None;
        };
        let m = self.prog.method(r.method);
        let cap = self.capture(r.method);
        let shared = shared.unwrap_or(ObjRef::Capture {
            capture: cap,
            slot: Slot::Arg(j),
        });
        let args = (0..m.num_params)
            .map(|i| {
                if i == j {
                    shared
                } else {
                    ObjRef::Capture {
                        capture: cap,
                        slot: Slot::Arg(i),
                    }
                }
            })
            .collect();
        let recv = if m.is_static || m.is_ctor {
            // Constructors get a fresh receiver allocated by the executor.
            None
        } else {
            Some(ObjRef::Capture {
                capture: cap,
                slot: Slot::Recv,
            })
        };
        self.builders.push(PlanCall {
            method: r.method,
            recv,
            args,
            stop_after: None,
        });
        let built = ObjRef::Built {
            builder: self.builders.len() - 1,
        };
        Some((built, shared))
    }

    /// The type a builder produces: the return type, or the constructed
    /// class for constructors.
    fn builder_result_ty(&self, method: MethodId) -> Option<Ty> {
        let m = self.prog.method(method);
        if m.is_ctor {
            Some(Ty::Class(m.owner))
        } else if m.ret != Ty::Void {
            Some(m.ret.clone())
        } else {
            None
        }
    }
}

/// The root slot of a racy call as an [`ObjRef`].
fn root_ref(call: &PlanCall, root: PathRoot) -> Option<ObjRef> {
    match root {
        PathRoot::This => call.recv,
        PathRoot::Param(i) => call.args.get(i).copied(),
        PathRoot::Ret => None,
    }
}

/// Overrides the root slot of a racy call.
fn set_root_ref(call: &mut PlanCall, root: PathRoot, val: ObjRef) -> Option<()> {
    match root {
        PathRoot::This => {
            call.recv = Some(val);
            Some(())
        }
        PathRoot::Param(i) => {
            *call.args.get_mut(i)? = val;
            Some(())
        }
        PathRoot::Ret => None,
    }
}

/// Would installing shared objects at anchors `q1`/`q2` force the two
/// accesses to hold a common lock? A lock λ₁ of thread 1 and λ₂ of thread 2
/// are forced onto the same object when both extend their anchors with the
/// same suffix (everything at or below the anchor is shared). Lock objects
/// without client paths are library-internal and assumed distinct per
/// receiver.
///
/// Public because the static pre-screener (`narada-screen`) must apply the
/// *identical* predicate when mirroring the anchor search — any drift
/// between the two copies would unsoundly discharge pairs.
pub fn lock_collision(
    ls1: &[crate::access::HeldLock],
    ls2: &[crate::access::HeldLock],
    q1: &IPath,
    q2: &IPath,
) -> bool {
    for l1 in ls1 {
        let Some(p1) = &l1.path else { continue };
        let Some(s1) = q1.suffix_of(p1) else { continue };
        for l2 in ls2 {
            let Some(p2) = &l2.path else { continue };
            let Some(s2) = q2.suffix_of(p2) else { continue };
            if s1 == s2 {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::HeldLock;
    use narada_lang::hir::FieldId;

    fn path(root: PathRoot, fields: &[u32]) -> IPath {
        IPath {
            root,
            fields: fields
                .iter()
                .map(|&f| PathField::Field(FieldId(f)))
                .collect(),
        }
    }

    #[test]
    fn lock_collision_on_shared_receiver() {
        // Both lock the receiver; anchors are the receivers themselves.
        let ls = vec![HeldLock {
            path: Some(path(PathRoot::This, &[])),
        }];
        let q = path(PathRoot::This, &[]);
        assert!(lock_collision(&ls, &ls, &q, &q));
    }

    #[test]
    fn no_collision_when_lock_above_anchor() {
        // Lock on the receiver, sharing at this.x: receivers stay distinct.
        let ls = vec![HeldLock {
            path: Some(path(PathRoot::This, &[])),
        }];
        let q = path(PathRoot::This, &[7]);
        assert!(!lock_collision(&ls, &ls, &q, &q));
    }

    #[test]
    fn collision_when_lock_at_anchor() {
        // Lock on this.x while sharing this.x: same lock object.
        let ls = vec![HeldLock {
            path: Some(path(PathRoot::This, &[7])),
        }];
        let q = path(PathRoot::This, &[7]);
        assert!(lock_collision(&ls, &ls, &q, &q));
    }

    #[test]
    fn collision_when_lock_below_anchor() {
        let ls = vec![HeldLock {
            path: Some(path(PathRoot::This, &[7, 9])),
        }];
        let q = path(PathRoot::This, &[7]);
        assert!(lock_collision(&ls, &ls, &q, &q));
    }

    #[test]
    fn unknown_lock_objects_do_not_collide() {
        let ls = vec![HeldLock { path: None }];
        let q = path(PathRoot::This, &[]);
        assert!(!lock_collision(&ls, &ls, &q, &q));
    }

    #[test]
    fn different_suffixes_do_not_collide() {
        let l1 = vec![HeldLock {
            path: Some(path(PathRoot::This, &[7, 1])),
        }];
        let l2 = vec![HeldLock {
            path: Some(path(PathRoot::This, &[7, 2])),
        }];
        let q = path(PathRoot::This, &[7]);
        assert!(!lock_collision(&l1, &l2, &q, &q));
    }
}
