//! Verdict types for the static race pre-screener.
//!
//! The screener itself lives in the `narada-screen` crate (it analyzes
//! MIR, which the synthesis pipeline otherwise never inspects); only the
//! *interface* lives here so that `SynthesisOutput`, `StageTimings`, and
//! the detect crate's provenance records can carry verdicts without a
//! dependency cycle. The pipeline accepts any [`ScreenerFn`] — the CLI
//! passes `narada_screen::screen_pairs`.
//!
//! Soundness contract (argued in DESIGN.md §5): a screener may only
//! *discharge* pairs — `MustNotRace` promises that no synthesized context
//! can make the two accesses race, so filtering on it never loses a
//! dynamically-confirmable pair. `MayRace` makes no promise either way;
//! its score is a heuristic rank, higher = more suspicious.

use narada_lang::mir::MirProgram;
use std::fmt;

/// Why the screener believes a pair can never be made to race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScreenReason {
    /// Both accesses must hold the owner object's own monitor when they
    /// execute, so the two threads can never be poised inside their
    /// critical sections simultaneously.
    OwnerMonitorHeld,
    /// The accessed owner is a fresh allocation that never escapes its
    /// allocating invocation; no second thread can reach it.
    ThreadLocalOwner,
    /// No derivable sharing context exists: every candidate anchor either
    /// forces the two calls onto a common lock or cannot be installed
    /// through the observed setter/builder summaries, so the Context
    /// Deriver can only emit a non-racing (`expects_race = false`) plan.
    NoRacyContext,
}

impl fmt::Display for ScreenReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScreenReason::OwnerMonitorHeld => "owner-monitor-held",
            ScreenReason::ThreadLocalOwner => "thread-local-owner",
            ScreenReason::NoRacyContext => "no-racy-context",
        })
    }
}

/// The screener's judgement on one generated pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticVerdict {
    /// Proven non-racy; safe to prune under `--static-filter`.
    MustNotRace {
        /// The discharge argument that applied.
        reason: ScreenReason,
    },
    /// Not discharged; `score` ranks suspicion (higher = try earlier).
    MayRace {
        /// Digest-style suspicion score, always ≥ 1.
        score: u32,
    },
}

impl StaticVerdict {
    /// `true` unless the pair was proven non-racy.
    pub fn may_race(&self) -> bool {
        matches!(self, StaticVerdict::MayRace { .. })
    }

    /// Rank key: discharged pairs score 0, survivors their suspicion.
    pub fn score(&self) -> u32 {
        match *self {
            StaticVerdict::MustNotRace { .. } => 0,
            StaticVerdict::MayRace { score } => score,
        }
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticVerdict::MustNotRace { reason } => write!(f, "must-not-race({reason})"),
            StaticVerdict::MayRace { score } => write!(f, "may-race({score})"),
        }
    }
}

/// A static pre-screener: one verdict per pair of the given
/// [`crate::pairs::PairSet`], in pair order.
///
/// A `&dyn Fn` rather than a plain `fn` pointer so callers can close
/// over pre-built analysis state — the serve cache passes a closure
/// capturing its memoized whole-program summaries
/// (`narada_screen::screen_pairs_with`), while plain functions like
/// `narada_screen::screen_pairs` still coerce at every call site.
pub type ScreenerFn<'a> =
    &'a (dyn Fn(&MirProgram, &crate::pairs::PairSet) -> Vec<StaticVerdict> + Sync);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors_and_display() {
        let v = StaticVerdict::MustNotRace {
            reason: ScreenReason::NoRacyContext,
        };
        assert!(!v.may_race());
        assert_eq!(v.score(), 0);
        assert_eq!(v.to_string(), "must-not-race(no-racy-context)");
        let m = StaticVerdict::MayRace { score: 70 };
        assert!(m.may_race());
        assert_eq!(m.score(), 70);
        assert_eq!(m.to_string(), "may-race(70)");
        assert_eq!(
            ScreenReason::OwnerMonitorHeld.to_string(),
            "owner-monitor-held"
        );
        assert_eq!(
            ScreenReason::ThreadLocalOwner.to_string(),
            "thread-local-owner"
        );
    }
}
