//! # narada-core — synthesizing racy tests
//!
//! Rust implementation of the PLDI 2015 technique *“Synthesizing Racy
//! Tests”* (Samak, Ramanathan, Jagannathan — the **Narada** system) over
//! the MJ object language.
//!
//! Given a library and a *sequential* seed test-suite, the pipeline
//! produces *multithreaded* client tests whose execution can manifest data
//! races inside the library:
//!
//! 1. [`analyze::analyze`] — the Access Analyzer (§3.1–§3.2):
//!    evaluates the inference rules over sequential execution traces,
//!    building the abstract heap `H` (aliasing + controllability + lock
//!    state), the access map `A` (writeable/unprotected per label), and the
//!    access summaries `D` over the `I`-parameter variables;
//! 2. [`pairs::generate_pairs`] — the Pair Generator
//!    (§3.3): unprotected accesses × same-field accesses, at least one
//!    write;
//! 3. [`context::derive_plan`] — the Context Deriver (§3.3,
//!    Fig. 10's `Q` rules): method sequences that drive two object graphs
//!    to share exactly the object the race needs, while keeping the two
//!    accesses' locksets disjoint;
//! 4. [`synth::execute_plan`] — the Test Synthesizer (§3.4,
//!    Algorithm 1): collect live objects by suspending seed runs,
//!    re-arrange them per the sharing constraints, run the context
//!    setters, then spawn two threads invoking the racy methods.
//!
//! ## Example
//!
//! ```
//! use narada_core::{synthesize_source, SynthesisOptions};
//!
//! // Fig. 1 of the paper: `update` is synchronized, yet two Lib objects
//! // sharing one Counter race on `count`.
//! let (prog, _mir, out) = synthesize_source(r#"
//!     class Counter { int count; void inc() { this.count = this.count + 1; } }
//!     class Lib {
//!         Counter c;
//!         sync void update() { this.c.inc(); }
//!         sync void set(Counter x) { this.c = x; }
//!     }
//!     test seed {
//!         var r = new Counter();
//!         var p = new Lib();
//!         p.set(r);
//!         p.update();
//!     }
//! "#, &SynthesisOptions::default())?;
//! assert!(out.pair_count() > 0, "count is racy");
//! assert!(out.test_count() > 0, "a racy test is synthesized");
//! # Ok::<(), narada_lang::Diagnostics>(())
//! ```

#![warn(missing_docs)]

pub mod absheap;
pub mod access;
pub mod analyze;
pub mod context;
pub mod digest;
pub mod options;
pub mod pairs;
pub mod parallel;
pub mod path;
pub mod pipeline;
pub mod screen;
pub mod synth;

pub use access::{AccessRecord, Analysis, RaceKey, ReturnSummary, SetterSummary};
pub use analyze::analyze;
pub use context::{derive_plan, lock_collision, CaptureSpec, ObjRef, PlanCall, Slot, TestPlan};
pub use digest::Fnv1a;
pub use options::{ExploreOptions, SynthesisOptions};
pub use pairs::{generate_pairs, PairSet, RacePair};
pub use parallel::{available_threads, effective_threads, parallel_map, StageTimings};
pub use path::{IPath, PathField, PathRoot};
pub use pipeline::{
    demonstrate, demonstrate_observed, synthesize, synthesize_generated, synthesize_observed,
    synthesize_source, synthesize_with, Demonstration, SeedGenFn, SynthesisOutput,
};
pub use screen::{ScreenReason, ScreenerFn, StaticVerdict};
pub use synth::{
    execute_plan, execute_plan_fresh, execute_plan_prefix, execute_plan_recorded,
    execute_plan_suffix, ExecError, ExecReport, PlanPrefix, SynthesizedTest,
};
