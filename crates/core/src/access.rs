//! Analysis output records: the access map `A`, the access summaries `D`,
//! and the method summaries distilled from them.

use crate::path::{IPath, PathField};
use narada_lang::hir::{FieldId, MethodId, Program, Ty};
use narada_lang::Span;
use narada_vm::Label;
use std::fmt;

/// One lock held at an access, with its client-relative path when the lock
/// object is reachable from the client-invocation's `I`-variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Path of the lock object relative to the access's client invocation,
    /// when resolvable (`None` for library-internal lock objects).
    pub path: Option<IPath>,
}

/// One dynamic heap access observed in the sequential trace — an entry of
/// the paper's access map `A` enriched with everything the later pipeline
/// stages need (owner path, lockset, typing).
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Dynamic execution index of the access.
    pub label: Label,
    /// The client-invoked library method this access executed under.
    pub method: MethodId,
    /// Client-relative path of the accessed location (owner path plus leaf
    /// field), when the owner is client-reachable. `I1.x.o` in Fig. 11.
    pub path: Option<IPath>,
    /// The leaf location within the owner object.
    pub leaf: PathField,
    /// Static identity of the leaf field (`None` for array elements).
    pub field: Option<FieldId>,
    /// Whether the access is a write.
    pub is_write: bool,
    /// `A(ℓ).unprotected`: owner controllable and unlocked.
    pub unprotected: bool,
    /// `A(ℓ).writeable`: both sides of a field write controllable.
    pub writeable: bool,
    /// Locks held by the executing thread at the access.
    pub locks: Vec<HeldLock>,
    /// The access occurred inside a constructor (§4: discarded when
    /// building racing pairs, kept for summaries).
    pub in_ctor: bool,
    /// Source span, for race reports.
    pub span: Span,
}

impl AccessRecord {
    /// Owner path (the path minus the leaf), when available.
    pub fn owner_path(&self) -> Option<IPath> {
        self.path
            .as_ref()
            .and_then(|p| p.split_last())
            .map(|(o, _)| o)
    }

    /// Grouping key for pair generation: accesses can only race when they
    /// touch the same static location.
    pub fn race_key(&self) -> Option<RaceKey> {
        match (self.leaf, self.field) {
            (PathField::Field(f), _) => Some(RaceKey::Field(f)),
            (PathField::Elem, _) => {
                // Array elements are grouped by the field the array lives
                // in (the last named field on the owner path).
                let owner = self.owner_path()?;
                let via = owner.fields.iter().rev().find_map(|pf| pf.field())?;
                Some(RaceKey::ElemVia(via))
            }
        }
    }

    /// Renders the record for reports.
    pub fn display<'a>(&'a self, prog: &'a Program) -> AccessDisplay<'a> {
        AccessDisplay { rec: self, prog }
    }
}

/// Static location identity used to group potentially racing accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKey {
    /// Accesses to a named field.
    Field(FieldId),
    /// Accesses to elements of the array stored in the given field.
    ElemVia(FieldId),
}

impl RaceKey {
    /// The underlying field.
    pub fn field(self) -> FieldId {
        match self {
            RaceKey::Field(f) | RaceKey::ElemVia(f) => f,
        }
    }
}

/// Helper returned by [`AccessRecord::display`].
#[derive(Debug)]
pub struct AccessDisplay<'a> {
    rec: &'a AccessRecord,
    prog: &'a Program,
}

impl fmt::Display for AccessDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.rec.is_write { "write" } else { "read" };
        let prot = if self.rec.unprotected {
            "unprotected"
        } else {
            "protected"
        };
        write!(
            f,
            "{prot} {kind} in {} of ",
            self.prog.qualified_name(self.rec.method)
        )?;
        match &self.rec.path {
            Some(p) => write!(f, "{}", p.display(self.prog))?,
            None => write!(f, "<unreachable path>")?,
        }
        write!(f, " at {}", self.rec.label)
    }
}

/// A *writeable assignment* summary distilled from `D` (paper §3.2–§3.3):
/// invoking `method` stores the object at `rhs` into the position `lhs`.
/// `bar` in Fig. 13 yields `lhs = I_this.x, rhs = I_p0.w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetterSummary {
    /// The method whose invocation performs the assignment.
    pub method: MethodId,
    /// Target position (rooted at the method's receiver or a parameter).
    pub lhs: IPath,
    /// Source position (rooted at the receiver or a parameter).
    pub rhs: IPath,
    /// Label of the observed write.
    pub label: Label,
    /// Source site of the write (the §4 partial-invocation stop point).
    pub span: Span,
    /// A later, non-controllable write inside the same invocation
    /// overwrites this assignment (§4): running the method to completion
    /// would destroy the context, so the synthesizer must suspend the
    /// invocation right after this write.
    pub overwritten: bool,
}

impl SetterSummary {
    /// Renders the summary for reports.
    pub fn render(&self, prog: &Program) -> String {
        format!(
            "{}: {} ⤳ {}",
            prog.qualified_name(self.method),
            self.lhs.display(prog),
            self.rhs.display(prog)
        )
    }
}

/// A *return summary* (modified `return` rule, Fig. 9): the object returned
/// by `method` exposes, at `ret_path` (rooted at `I_r`), the client value at
/// `src`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnSummary {
    /// The returning method.
    pub method: MethodId,
    /// Position within the returned object (`I_r.…`).
    pub ret_path: IPath,
    /// Client position the content came from.
    pub src: IPath,
    /// Label of the return.
    pub label: Label,
}

/// Complete result of analyzing the sequential traces of one class's seed
/// suite: everything the pair generator, context deriver, and synthesizer
/// need.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All dynamic accesses (the enriched access map `A`).
    pub accesses: Vec<AccessRecord>,
    /// Writeable-assignment summaries from `D`.
    pub setters: Vec<SetterSummary>,
    /// Return summaries from `D`.
    pub returns: Vec<ReturnSummary>,
}

impl Analysis {
    /// Unprotected accesses (candidates for racing pairs), constructors
    /// excluded per §4.
    pub fn unprotected(&self) -> impl Iterator<Item = &AccessRecord> {
        self.accesses.iter().filter(|a| a.unprotected && !a.in_ctor)
    }

    /// Setter summaries whose target is rooted at the receiver and whose
    /// target type is compatible with `ty` at field-chain position —
    /// convenience for the `Q` *set* rule.
    pub fn setters_for_owner(&self, prog: &Program, ty: &Ty) -> Vec<&SetterSummary> {
        self.setters
            .iter()
            .filter(|s| {
                let m = prog.method(s.method);
                match s.lhs.root {
                    crate::path::PathRoot::This => {
                        !m.is_static && prog.tys_compatible(&Ty::Class(m.owner), ty)
                    }
                    _ => false,
                }
            })
            .collect()
    }
}
