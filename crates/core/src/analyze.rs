//! The Access Analyzer (paper §3.1–§3.2): scans a sequential execution
//! trace and evaluates the inference rules of Fig. 7/Fig. 9 to produce the
//! enriched access map `A`, the access summaries `D`, and the distilled
//! setter/return summaries.
//!
//! The analyzer walks the event stream once. For every *client-level*
//! library invocation (the paper's `invoke` rule) it:
//!
//! 1. applies the `R` bootstrap — receiver and arguments (and everything
//!    reachable from them) become controllable and unlocked;
//! 2. roots an `I`-path table: the receiver is `I_this`, argument *i* is
//!    `I_p{i}`; reads extend paths (`src(y)⊕f`), giving `src(x, H)`;
//! 3. classifies each heap access (writeable / unprotected, Fig. 7) with
//!    its held lockset, and records `D` entries for writeable writes and
//!    controllable return-value fields (Fig. 9).

use crate::absheap::{AbsHeap, LocId};
use crate::access::{AccessRecord, Analysis, HeldLock, ReturnSummary, SetterSummary};
use crate::path::{IPath, PathField, PathRoot};
use narada_lang::hir::{MethodId, Program};
use narada_lang::mir::BodyId;
use narada_vm::{CopySrc, Event, EventKind, FieldKey, InvId, Value};
use std::collections::HashMap;

/// Maximum field-chain depth tracked for `I`-paths. Paths deeper than this
/// are treated as unreachable (context cannot be set for them anyway).
const MAX_PATH_DEPTH: usize = 4;

/// Analyzes one or more sequential traces (concatenated event streams).
pub fn analyze(prog: &Program, events: &[Event]) -> Analysis {
    let mut a = Analyzer::new(prog);
    for ev in events {
        a.event(ev);
    }
    a.finish()
}

struct InvInfo {
    body: BodyId,
    /// The invocation executes inside a constructor / field-initializer
    /// chain (accesses there are excluded from racing pairs, §4).
    ctor_chain: bool,
}

struct RootCx {
    inv: InvId,
    method: MethodId,
    /// `I`-path table for this client invocation: loc → shortest known path.
    paths: HashMap<LocId, IPath>,
    /// Setter summaries recorded during this root, keyed by the written
    /// location, so a later non-controllable overwrite can flag them (§4).
    pending_setters: HashMap<(LocId, PathField), Vec<usize>>,
}

struct Analyzer<'p> {
    prog: &'p Program,
    heap: AbsHeap,
    invs: HashMap<InvId, InvInfo>,
    /// Return-value locations of completed invocations.
    returns: HashMap<InvId, LocId>,
    /// The active client-level invocation, if any.
    root: Option<RootCx>,
    /// Locks currently held (sequential trace ⇒ one stack), as locations.
    lock_stack: Vec<LocId>,
    out: Analysis,
}

impl<'p> Analyzer<'p> {
    fn new(prog: &'p Program) -> Self {
        Analyzer {
            prog,
            heap: AbsHeap::new(),
            invs: HashMap::new(),
            returns: HashMap::new(),
            root: None,
            lock_stack: Vec::new(),
            out: Analysis::default(),
        }
    }

    fn finish(self) -> Analysis {
        self.out
    }

    /// Location of a value: object identity for references, fresh NC for
    /// scalars without a known symbol.
    fn loc_of_value(&mut self, v: Value) -> Option<LocId> {
        v.as_obj().map(|o| self.heap.loc_of_obj(o))
    }

    fn in_client_scope(&self, inv: InvId) -> bool {
        matches!(
            self.invs.get(&inv).map(|i| i.body),
            Some(BodyId::Test(_)) | None
        )
    }

    fn path_of(&self, loc: LocId) -> Option<IPath> {
        self.root.as_ref()?.paths.get(&loc).cloned()
    }

    fn assign_path(&mut self, loc: LocId, path: IPath) {
        if path.depth() > MAX_PATH_DEPTH {
            return;
        }
        if let Some(root) = &mut self.root {
            root.paths.entry(loc).or_insert(path);
        }
    }

    fn event(&mut self, ev: &Event) {
        match &ev.kind {
            EventKind::InvokeStart {
                inv,
                body,
                method: _,
                caller,
                from_client,
                recv,
                recv_var,
                args,
                arg_vars,
            } => {
                let caller_ctor = caller
                    .and_then(|c| self.invs.get(&c))
                    .map(|i| i.ctor_chain)
                    .unwrap_or(false);
                let own_ctor = match body {
                    BodyId::Method(m) => self.prog.method(*m).is_ctor,
                    BodyId::FieldInit(_) => true,
                    BodyId::Test(_) => false,
                };
                self.invs.insert(
                    *inv,
                    InvInfo {
                        body: *body,
                        ctor_chain: caller_ctor || own_ctor,
                    },
                );

                // Bind callee receiver/parameter locals.
                let mut locs: Vec<(narada_lang::mir::VarId, Option<LocId>)> = Vec::new();
                let mut slot = 0u32;
                if let Some(r) = recv {
                    let loc = match (self.loc_of_value(*r), recv_var, caller) {
                        (Some(l), _, _) => Some(l),
                        (None, Some(v), Some(c)) => self.heap.var_loc(*c, *v),
                        _ => None,
                    };
                    locs.push((narada_lang::mir::VarId(0), loc));
                    slot = 1;
                }
                for (i, a) in args.iter().enumerate() {
                    let loc = match self.loc_of_value(*a) {
                        Some(l) => Some(l),
                        None => arg_vars
                            .get(i)
                            .zip(*caller)
                            .and_then(|(v, c)| self.heap.var_loc(c, *v)),
                    };
                    locs.push((narada_lang::mir::VarId(slot + i as u32), loc));
                }
                for (var, loc) in &locs {
                    let l = match loc {
                        Some(l) => *l,
                        // Scalars with no caller symbol: fresh location,
                        // controllable when client-supplied.
                        None => self.heap.bind_opaque(*inv, *var),
                    };
                    self.heap.bind_var(*inv, *var, l);
                }

                // Client-level method invocation: the paper's `invoke` rule.
                if *from_client {
                    if let BodyId::Method(m) = body {
                        // R bootstrap: receiver and args controllable+deep.
                        for (_, loc) in &locs {
                            if let Some(l) = loc {
                                self.heap.mark_controllable_deep(*l);
                            }
                        }
                        // Scalar params: mark their bindings controllable
                        // by rebinding as controllable fresh locations.
                        let mut slot = 0u32;
                        if recv.is_some() {
                            slot = 1;
                        }
                        for (i, a) in args.iter().enumerate() {
                            if a.as_obj().is_none() {
                                let var = narada_lang::mir::VarId(slot + i as u32);
                                let l = self.heap.var_loc(*inv, var).expect("bound above");
                                self.heap.mark_controllable_deep(l);
                            }
                        }
                        // Root a fresh I-path table, when not nested under
                        // an active root (e.g. a ctor run by `new` inside a
                        // library method keeps the outer root).
                        if self.root.is_none() {
                            let mut paths = HashMap::new();
                            let mut slot = 0usize;
                            if recv.is_some() {
                                if let Some(l) = locs[0].1 {
                                    paths.insert(l, IPath::this());
                                }
                                slot = 1;
                            }
                            for i in 0..args.len() {
                                if let Some(l) = locs[slot + i].1 {
                                    paths.entry(l).or_insert_with(|| IPath::param(i));
                                }
                            }
                            self.root = Some(RootCx {
                                inv: *inv,
                                method: *m,
                                paths,
                                pending_setters: HashMap::new(),
                            });
                        }
                    }
                }
            }

            EventKind::InvokeEnd {
                inv, ret_var, ret, ..
            } => {
                // Record the return-value location for CallResult copies.
                let ret_loc = match ret {
                    Some(v) => match self.loc_of_value(*v) {
                        Some(l) => Some(l),
                        None => ret_var.and_then(|rv| self.heap.var_loc(*inv, rv)),
                    },
                    None => None,
                };
                if let Some(l) = ret_loc {
                    self.returns.insert(*inv, l);
                }
                // Closing the client root: emit return summaries (Fig. 9's
                // modified return rule) and drop the path table.
                let is_root = self.root.as_ref().map(|r| r.inv == *inv).unwrap_or(false);
                if is_root {
                    if let Some(l) = ret_loc {
                        self.emit_return_summaries(l, ev);
                    }
                    self.root = None;
                    debug_assert!(
                        self.lock_stack.is_empty(),
                        "client invocation returned holding locks"
                    );
                    self.lock_stack.clear();
                }
            }

            EventKind::Copy { inv, dst, src, .. } => match src {
                CopySrc::Var(v) => {
                    let loc = match self.heap.var_loc(*inv, *v) {
                        Some(l) => l,
                        None => self.heap.bind_opaque(*inv, *v),
                    };
                    self.heap.bind_var(*inv, *dst, loc);
                }
                CopySrc::Opaque => {
                    self.heap.bind_opaque(*inv, *dst);
                }
                CopySrc::CallResult { callee } => {
                    let loc = match self.returns.get(callee) {
                        Some(&l) => l,
                        None => self.heap.bind_opaque(*inv, *dst),
                    };
                    self.heap.bind_var(*inv, *dst, loc);
                }
            },

            EventKind::Alloc { inv, dst, obj, .. } => {
                // The `alloc` rule: client allocations are controllable,
                // library-internal ones are not.
                let controllable = self.in_client_scope(*inv);
                let loc = self.heap.alloc_obj(*obj, controllable);
                self.heap.bind_var(*inv, *dst, loc);
            }

            EventKind::Read {
                inv,
                dst,
                obj,
                field,
                value,
                ..
            } => {
                let owner = self.heap.loc_of_obj(*obj);
                let pf = path_field(*field);
                // Ground-truth edge for references; lazy edge for scalars.
                let content = match self.loc_of_value(*value) {
                    Some(l) => {
                        self.heap.set_field_loc(owner, pf, l);
                        l
                    }
                    None => self.heap.field_loc(owner, pf),
                };
                self.heap.bind_var(*inv, *dst, content);
                // Extend I-paths: src(x) = src(y) ⊕ f.
                if let Some(p) = self.path_of(owner) {
                    self.assign_path(content, p.child(pf));
                }
                self.record_access(ev, *inv, owner, pf, false, false);
            }

            EventKind::Write {
                inv,
                obj,
                field,
                src_var,
                value,
                ..
            } => {
                let owner = self.heap.loc_of_obj(*obj);
                let pf = path_field(*field);
                let src_loc = match self.loc_of_value(*value) {
                    Some(l) => Some(l),
                    None => self.heap.var_loc(*inv, *src_var),
                };
                // The write rule: writeable iff both sides controllable.
                let writeable = self.heap.controllable(owner)
                    && src_loc.map(|l| self.heap.controllable(l)).unwrap_or(false);
                if let Some(l) = src_loc {
                    self.heap.set_field_loc(owner, pf, l);
                }
                self.record_access(ev, *inv, owner, pf, true, writeable);
                // D entry → setter summary when both paths are known and we
                // are inside a library method.
                let src_controllable = src_loc.map(|l| self.heap.controllable(l)).unwrap_or(false);
                if writeable {
                    if let (Some(root), Some(src_loc)) = (&mut self.root, src_loc) {
                        let lhs = root.paths.get(&owner).cloned();
                        let rhs = root.paths.get(&src_loc).cloned();
                        if let (Some(lhs), Some(rhs)) = (lhs, rhs) {
                            if lhs.root != PathRoot::Ret && rhs.root != PathRoot::Ret {
                                let idx = self.out.setters.len();
                                self.out.setters.push(SetterSummary {
                                    method: root.method,
                                    lhs: lhs.child(pf),
                                    rhs,
                                    label: ev.label,
                                    span: ev.span,
                                    overwritten: false,
                                });
                                root.pending_setters
                                    .entry((owner, pf))
                                    .or_default()
                                    .push(idx);
                            }
                        }
                    }
                } else if !src_controllable {
                    // §4: a non-controllable write clobbers any earlier
                    // controllable assignment to the same location within
                    // this invocation.
                    if let Some(root) = &mut self.root {
                        if let Some(idxs) = root.pending_setters.get(&(owner, pf)) {
                            for &i in idxs {
                                self.out.setters[i].overwritten = true;
                            }
                        }
                    }
                }
            }

            EventKind::Lock { obj, .. } => {
                let loc = self.heap.loc_of_obj(*obj);
                self.heap.set_locked(loc, true);
                self.lock_stack.push(loc);
            }

            EventKind::Unlock { obj, .. } => {
                let loc = self.heap.loc_of_obj(*obj);
                self.heap.set_locked(loc, false);
                if let Some(pos) = self.lock_stack.iter().rposition(|&l| l == loc) {
                    self.lock_stack.remove(pos);
                }
            }

            EventKind::ThreadSpawn { .. }
            | EventKind::ThreadFinish
            | EventKind::ThreadFail { .. } => {}
        }
    }

    fn record_access(
        &mut self,
        ev: &Event,
        inv: InvId,
        owner: LocId,
        pf: PathField,
        is_write: bool,
        writeable: bool,
    ) {
        // Only record accesses executed inside a library method under an
        // active client root (client-code field pokes are not library
        // behaviour).
        if self.in_client_scope(inv) {
            return;
        }
        let Some(root) = &self.root else { return };
        let method = root.method;
        let unprotected = self.heap.controllable(owner) && !self.heap.locked(owner);
        let path = root.paths.get(&owner).map(|p| p.child(pf));
        let locks = self
            .lock_stack
            .iter()
            .map(|l| HeldLock {
                path: root.paths.get(l).cloned(),
            })
            .collect();
        let in_ctor = self.invs.get(&inv).map(|i| i.ctor_chain).unwrap_or(false);
        let field = pf.field();
        self.out.accesses.push(AccessRecord {
            label: ev.label,
            method,
            path,
            leaf: pf,
            field,
            is_write,
            unprotected,
            writeable,
            locks,
            in_ctor,
            span: ev.span,
        });
    }

    /// Walks the returned object's known field edges (depth-limited) and
    /// emits `I_r`-rooted summaries for controllable, client-sourced
    /// content — Fig. 9's `update` operator.
    fn emit_return_summaries(&mut self, ret_loc: LocId, ev: &Event) {
        let Some(root) = &self.root else { return };
        let method = root.method;
        let mut frontier = vec![(ret_loc, IPath::root(PathRoot::Ret))];
        let mut seen = std::collections::HashSet::new();
        let mut found = Vec::new();
        while let Some((loc, path)) = frontier.pop() {
            if !seen.insert(loc) || path.depth() >= MAX_PATH_DEPTH {
                continue;
            }
            for (pf, child) in self.heap.field_edges(loc) {
                let child_path = path.child(pf);
                if self.heap.controllable(child) {
                    if let Some(src) = root.paths.get(&child) {
                        if src.root != PathRoot::Ret {
                            found.push(ReturnSummary {
                                method,
                                ret_path: child_path.clone(),
                                src: src.clone(),
                                label: ev.label,
                            });
                        }
                    }
                }
                frontier.push((child, child_path));
            }
        }
        self.out.returns.extend(found);
    }
}

fn path_field(k: FieldKey) -> PathField {
    match k {
        FieldKey::Field(f) => PathField::Field(f),
        FieldKey::Elem(_) => PathField::Elem,
    }
}
