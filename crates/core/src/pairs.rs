//! The Pair Generator (paper §3.3): combines unprotected accesses into
//! *potential racy access pairs*.
//!
//! An unprotected access can race with (a) the same access from a second
//! thread, or (b) any other access to the same static location from a
//! different thread — provided at least one of the two is a write.

use crate::access::{AccessRecord, Analysis, RaceKey};
use crate::options::SynthesisOptions;
use narada_lang::hir::Program;
use std::collections::{BTreeMap, HashMap};

/// A potential racy access pair: indices into the deduplicated access list
/// returned by [`generate_pairs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacePair {
    /// First access (index into [`PairSet::accesses`]).
    pub a1: usize,
    /// Second access (may equal `a1`: the "same label from two threads"
    /// case).
    pub a2: usize,
    /// The static location both accesses touch.
    pub key: RaceKey,
}

/// Deduplicated static accesses plus the racing pairs over them.
#[derive(Debug, Default)]
pub struct PairSet {
    /// Static accesses (one per distinct source site × path × kind).
    pub accesses: Vec<AccessRecord>,
    /// The generated pairs.
    pub pairs: Vec<RacePair>,
}

impl PairSet {
    /// The two accesses of a pair.
    pub fn accesses_of(&self, pair: &RacePair) -> (&AccessRecord, &AccessRecord) {
        (&self.accesses[pair.a1], &self.accesses[pair.a2])
    }
}

/// Generates racing pairs from an analysis result.
pub fn generate_pairs(_prog: &Program, analysis: &Analysis, opts: &SynthesisOptions) -> PairSet {
    // 1. Deduplicate dynamic accesses to static ones: the paper's racing
    //    pairs are per (client-invoked method, access path, kind) — all
    //    source sites inside one method that touch the same client-visible
    //    location are one access.
    let mut seen = HashMap::new();
    let mut accesses: Vec<AccessRecord> = Vec::new();
    for rec in &analysis.accesses {
        let key = (rec.method, rec.path.clone(), rec.leaf, rec.is_write);
        if let Some(&idx) = seen.get(&key) {
            // Keep the most pessimistic flags across dynamic occurrences.
            let existing: &mut AccessRecord = &mut accesses[idx];
            existing.unprotected |= rec.unprotected;
            existing.writeable |= rec.writeable;
            // Locks merge pessimistically too: only locks held on *every*
            // dynamic occurrence are really guaranteed at this static
            // access, so keep the intersection (by client-relative path).
            // Anything weaker would let downstream consumers (the lockset
            // collision check, the static screener) trust protection that
            // one occurrence lacked.
            existing
                .locks
                .retain(|l| rec.locks.iter().any(|r| r.path == l.path));
            continue;
        }
        seen.insert(key, accesses.len());
        accesses.push(rec.clone());
    }

    // 2. Group by static location. A BTreeMap keyed on RaceKey's Ord makes
    //    the grouping itself order-independent: pair emission below walks
    //    keys in sorted order by construction, so downstream consumers
    //    (screener verdict indices, the difftest harness) see the same
    //    pair list on every run regardless of hasher state.
    let mut groups: BTreeMap<RaceKey, Vec<usize>> = BTreeMap::new();
    for (i, rec) in accesses.iter().enumerate() {
        if let Some(k) = rec.race_key() {
            groups.entry(k).or_default().push(i);
        }
    }

    // 3. Pair within groups.
    let qualifies_unprotected = |rec: &AccessRecord| -> bool {
        rec.unprotected
            && !rec.in_ctor
            && (!opts.strict_unprotected || rec.locks.is_empty())
            && rec.path.is_some()
    };
    let mut pairs = Vec::new();
    for (key, idxs) in &groups {
        let mut count = 0usize;
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos..] {
                if count >= opts.max_pairs_per_key {
                    break;
                }
                let (x, y) = (&accesses[i], &accesses[j]);
                // At least one write.
                if !x.is_write && !y.is_write {
                    continue;
                }
                // At least one unprotected, non-constructor access with a
                // client-reachable path.
                if !qualifies_unprotected(x) && !qualifies_unprotected(y) {
                    continue;
                }
                // The partner must also be pairable: non-ctor and reachable.
                if x.in_ctor || y.in_ctor || x.path.is_none() || y.path.is_none() {
                    continue;
                }
                // Same-site self pair only makes sense for writes.
                if i == j && !x.is_write {
                    continue;
                }
                pairs.push(RacePair {
                    a1: i,
                    a2: j,
                    key: *key,
                });
                count += 1;
            }
        }
    }
    PairSet { accesses, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::HeldLock;
    use crate::path::{IPath, PathField};
    use narada_lang::hir::{FieldId, MethodId};
    use narada_lang::Span;
    use narada_vm::Label;

    fn rec(
        method: u32,
        span: u32,
        field: u32,
        is_write: bool,
        unprotected: bool,
        locks: usize,
    ) -> AccessRecord {
        AccessRecord {
            label: Label(span as u64),
            method: MethodId(method),
            path: Some(IPath::this().child(PathField::Field(FieldId(field)))),
            leaf: PathField::Field(FieldId(field)),
            field: Some(FieldId(field)),
            is_write,
            unprotected,
            writeable: false,
            locks: vec![HeldLock { path: None }; locks],
            in_ctor: false,
            span: Span::new(span, span + 1),
        }
    }

    fn prog() -> Program {
        narada_lang::compile("").unwrap()
    }

    #[test]
    fn same_site_write_pairs_with_itself() {
        let analysis = Analysis {
            accesses: vec![rec(0, 0, 1, true, true, 0)],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(ps.pairs.len(), 1);
        assert_eq!(ps.pairs[0].a1, ps.pairs[0].a2);
    }

    #[test]
    fn read_read_never_pairs() {
        let analysis = Analysis {
            accesses: vec![rec(0, 0, 1, false, true, 0), rec(0, 5, 1, false, true, 0)],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert!(ps.pairs.is_empty());
    }

    #[test]
    fn protected_write_pairs_with_unprotected_read() {
        let analysis = Analysis {
            accesses: vec![rec(0, 0, 1, true, false, 1), rec(1, 5, 1, false, true, 0)],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(ps.pairs.len(), 1);
        assert_ne!(ps.pairs[0].a1, ps.pairs[0].a2);
    }

    #[test]
    fn different_fields_never_pair() {
        let analysis = Analysis {
            accesses: vec![rec(0, 0, 1, true, true, 0), rec(1, 5, 2, true, true, 0)],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        // Each write self-pairs but they never cross-pair.
        assert_eq!(ps.pairs.len(), 2);
        assert!(ps.pairs.iter().all(|p| p.a1 == p.a2));
    }

    #[test]
    fn dynamic_duplicates_collapse() {
        // Same site executed 3 times (a loop) is one static access.
        let analysis = Analysis {
            accesses: vec![
                rec(0, 0, 1, true, true, 0),
                rec(0, 0, 1, true, true, 0),
                rec(0, 0, 1, true, true, 0),
            ],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(ps.accesses.len(), 1);
        assert_eq!(ps.pairs.len(), 1);
    }

    #[test]
    fn ctor_accesses_excluded() {
        let mut a = rec(0, 0, 1, true, true, 0);
        a.in_ctor = true;
        let analysis = Analysis {
            accesses: vec![a],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert!(ps.pairs.is_empty());
    }

    #[test]
    fn strict_unprotected_filters_locked_accesses() {
        // Unprotected on the owner, but some other lock held (§4's
        // lock-correlation case).
        let analysis = Analysis {
            accesses: vec![rec(0, 0, 1, true, true, 1)],
            ..Default::default()
        };
        let lax = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(lax.pairs.len(), 1, "conservative default keeps the pair");
        let strict = generate_pairs(
            &prog(),
            &analysis,
            &SynthesisOptions {
                strict_unprotected: true,
                ..Default::default()
            },
        );
        assert!(strict.pairs.is_empty(), "A1 ablation drops it");
    }

    fn lock_on(path: IPath) -> HeldLock {
        HeldLock { path: Some(path) }
    }

    #[test]
    fn dedup_merges_locks_pessimistically() {
        // The same static access runs twice: once under this.c's monitor
        // and this's, once under this.c's alone. Only the common lock
        // survives — the weakest observed protection.
        let guard = IPath::this().child(PathField::Field(FieldId(7)));
        let mut first = rec(0, 0, 1, true, false, 0);
        first.locks = vec![lock_on(IPath::this()), lock_on(guard.clone())];
        let mut second = rec(0, 0, 1, true, true, 0);
        second.locks = vec![lock_on(guard.clone())];
        let analysis = Analysis {
            accesses: vec![first, second],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(ps.accesses.len(), 1);
        let merged = &ps.accesses[0];
        assert!(merged.unprotected, "weakest protection flag wins");
        assert_eq!(
            merged
                .locks
                .iter()
                .map(|l| l.path.clone())
                .collect::<Vec<_>>(),
            vec![Some(guard)],
            "only the lock held on every occurrence survives"
        );
    }

    #[test]
    fn dedup_lock_merge_drops_everything_when_an_occurrence_ran_bare() {
        let mut first = rec(0, 0, 1, true, false, 0);
        first.locks = vec![lock_on(IPath::this())];
        let second = rec(0, 0, 1, true, true, 0);
        let analysis = Analysis {
            accesses: vec![first, second],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert_eq!(ps.accesses.len(), 1);
        assert!(
            ps.accesses[0].locks.is_empty(),
            "a bare occurrence means no lock is guaranteed"
        );
    }

    #[test]
    fn pair_order_is_stable_across_repeated_runs() {
        // Many distinct race keys spread across methods so step 2's
        // grouping has real work to do; the emitted pair list (including
        // order) must be identical on every run — the difftest harness
        // derives per-pair seeds from pair indices, so any hash-order
        // leakage here would break byte-for-byte sweep reproducibility.
        let mut accesses = Vec::new();
        for field in 0..16u32 {
            for method in 0..4u32 {
                let span = field * 100 + method * 10;
                accesses.push(rec(method, span, field, true, true, 0));
                accesses.push(rec(method, span + 5, field, false, true, 0));
            }
        }
        let analysis = Analysis {
            accesses,
            ..Default::default()
        };
        let baseline = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert!(!baseline.pairs.is_empty());
        for _ in 0..20 {
            let again = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
            assert_eq!(baseline.pairs, again.pairs);
            assert_eq!(baseline.accesses.len(), again.accesses.len());
        }
        // Keys must come out in sorted order, not hasher order.
        let keys: Vec<_> = baseline.pairs.iter().map(|p| p.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pathless_accesses_do_not_pair() {
        let mut a = rec(0, 0, 1, true, true, 0);
        a.path = None;
        let analysis = Analysis {
            accesses: vec![a],
            ..Default::default()
        };
        let ps = generate_pairs(&prog(), &analysis, &SynthesisOptions::default());
        assert!(ps.pairs.is_empty());
    }
}
