//! Access paths rooted at the paper's `I`-variables.
//!
//! An [`IPath`] names a client-reachable position *relative to one
//! client-level library invocation*: its root is the receiver (`I_this`),
//! one of the parameters (`I_p0`, …), or the return value (`I_r`), followed
//! by a field chain. Examples from the paper: `I1.x.o` (the unprotected
//! access of Fig. 11), `Ithis.x ⤳ Iz.w` (the setter summary of `bar`),
//! `Ir.z.f ⤳ Iy` (a return summary).

use narada_lang::hir::{FieldId, Program};
use std::fmt;

/// The root of an access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathRoot {
    /// The receiver of the client invocation (`I_this`).
    This,
    /// The i-th parameter (`I_p{i}`).
    Param(usize),
    /// The return value (`I_r`), used in return summaries.
    Ret,
}

impl fmt::Display for PathRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathRoot::This => write!(f, "I_this"),
            PathRoot::Param(i) => write!(f, "I_p{i}"),
            PathRoot::Ret => write!(f, "I_r"),
        }
    }
}

/// One step of a field chain. Array elements are abstracted to a single
/// pseudo-field `[*]` for aliasing purposes (concrete indices matter only to
/// the dynamic detectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathField {
    /// A named field.
    Field(FieldId),
    /// Any element of an array.
    Elem,
}

impl PathField {
    /// The field id, when this is a named field.
    pub fn field(self) -> Option<FieldId> {
        match self {
            PathField::Field(f) => Some(f),
            PathField::Elem => None,
        }
    }
}

/// A client-relative access path: root plus field chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IPath {
    /// The root `I`-variable.
    pub root: PathRoot,
    /// Field chain from the root.
    pub fields: Vec<PathField>,
}

impl IPath {
    /// A path that is just a root.
    pub fn root(root: PathRoot) -> Self {
        IPath {
            root,
            fields: Vec::new(),
        }
    }

    /// The receiver path `I_this`.
    pub fn this() -> Self {
        Self::root(PathRoot::This)
    }

    /// The parameter path `I_p{i}`.
    pub fn param(i: usize) -> Self {
        Self::root(PathRoot::Param(i))
    }

    /// Extends the path by one field.
    pub fn child(&self, f: PathField) -> IPath {
        let mut fields = self.fields.clone();
        fields.push(f);
        IPath {
            root: self.root,
            fields,
        }
    }

    /// Number of fields in the chain.
    pub fn depth(&self) -> usize {
        self.fields.len()
    }

    /// Splits off the last field: `(owner, leaf)`. `None` when the path is
    /// a bare root.
    pub fn split_last(&self) -> Option<(IPath, PathField)> {
        let (&last, rest) = self.fields.split_last()?;
        Some((
            IPath {
                root: self.root,
                fields: rest.to_vec(),
            },
            last,
        ))
    }

    /// Drops the last `n` fields.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.depth()`.
    pub fn drop_suffix(&self, n: usize) -> IPath {
        assert!(n <= self.fields.len());
        IPath {
            root: self.root,
            fields: self.fields[..self.fields.len() - n].to_vec(),
        }
    }

    /// True if `self` is a (non-strict) prefix of `other` with the same
    /// root.
    pub fn is_prefix_of(&self, other: &IPath) -> bool {
        self.root == other.root
            && self.fields.len() <= other.fields.len()
            && other.fields[..self.fields.len()] == self.fields[..]
    }

    /// The suffix of `other` after `self`, when `self` is a prefix.
    pub fn suffix_of<'a>(&self, other: &'a IPath) -> Option<&'a [PathField]> {
        if self.is_prefix_of(other) {
            Some(&other.fields[self.fields.len()..])
        } else {
            None
        }
    }

    /// Length of the longest common suffix of two field chains.
    pub fn common_suffix_len(&self, other: &IPath) -> usize {
        self.fields
            .iter()
            .rev()
            .zip(other.fields.iter().rev())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Renders the path with real field names from `prog`.
    pub fn display<'a>(&'a self, prog: &'a Program) -> IPathDisplay<'a> {
        IPathDisplay { path: self, prog }
    }
}

impl fmt::Display for IPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        for pf in &self.fields {
            match pf {
                PathField::Field(id) => write!(f, ".{id}")?,
                PathField::Elem => write!(f, ".[*]")?,
            }
        }
        Ok(())
    }
}

/// Helper returned by [`IPath::display`].
#[derive(Debug)]
pub struct IPathDisplay<'a> {
    path: &'a IPath,
    prog: &'a Program,
}

impl fmt::Display for IPathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.path.root)?;
        for pf in &self.path.fields {
            match pf {
                PathField::Field(id) => write!(f, ".{}", self.prog.field(*id).name)?,
                PathField::Elem => write!(f, ".[*]")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(root: PathRoot, fields: &[u32]) -> IPath {
        IPath {
            root,
            fields: fields
                .iter()
                .map(|&f| PathField::Field(FieldId(f)))
                .collect(),
        }
    }

    #[test]
    fn child_and_split() {
        let base = IPath::this();
        let ext = base.child(PathField::Field(FieldId(3)));
        assert_eq!(ext.depth(), 1);
        let (owner, leaf) = ext.split_last().unwrap();
        assert_eq!(owner, base);
        assert_eq!(leaf, PathField::Field(FieldId(3)));
        assert!(base.split_last().is_none());
    }

    #[test]
    fn prefix_relations() {
        let a = p(PathRoot::This, &[1]);
        let b = p(PathRoot::This, &[1, 2]);
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(!p(PathRoot::Param(0), &[1]).is_prefix_of(&b));
        assert_eq!(a.suffix_of(&b).unwrap(), &[PathField::Field(FieldId(2))]);
    }

    #[test]
    fn common_suffix() {
        let a = p(PathRoot::This, &[1, 5, 9]);
        let b = p(PathRoot::Param(0), &[7, 5, 9]);
        assert_eq!(a.common_suffix_len(&b), 2);
        assert_eq!(a.common_suffix_len(&a), 3);
        assert_eq!(a.common_suffix_len(&p(PathRoot::This, &[2])), 0);
    }

    #[test]
    fn drop_suffix() {
        let a = p(PathRoot::This, &[1, 2, 3]);
        assert_eq!(a.drop_suffix(2), p(PathRoot::This, &[1]));
        assert_eq!(a.drop_suffix(0), a);
    }

    #[test]
    fn display_raw() {
        let a = p(PathRoot::Param(1), &[4]);
        assert_eq!(a.to_string(), "I_p1.f4");
        assert_eq!(IPath::root(PathRoot::Ret).to_string(), "I_r");
        let e = IPath::this().child(PathField::Elem);
        assert_eq!(e.to_string(), "I_this.[*]");
    }
}
