//! Fidelity tests: the analyzer must derive, on the paper's own worked
//! examples, exactly the classifications the paper reports.
//!
//! * Fig. 8/Fig. 11 (`A.foo`): the paper derives
//!   `A : {4 ↦ (false,false), 5 ↦ (false,true), 6 ↦ (true,false)}` —
//!   the read of `b.x` is protected (receiver locked), the write
//!   `t.o := rand()` is unprotected but not writeable (rhs `rand()` is not
//!   controllable), the write `b.y := y` is writeable but protected.
//! * §3.2 (`D`): the binding at the `b.y := y` label relates the receiver
//!   (`I_this.y`) to the supplied argument (`I_p0`); the unprotected
//!   access at the rand-write label is `I_this.x.o`.
//! * Fig. 13 (`bar`/`baz`): `bar`'s writeable assignment summarizes as
//!   `I_this.x ⤳ I_p0.w` and `baz`'s as `I_this.w ⤳ I_p0`.

use narada_core::{analyze, IPath, PathField, PathRoot};
use narada_lang::lower::lower_program;
use narada_vm::{Machine, VecSink};

/// Fig. 8 extended per Fig. 13 so every piece is exercised by a seed.
const FIG13_FULL: &str = r#"
    class X { int o; }
    class Y { }
    class Z {
        X w;
        void baz(X x) { this.w = x; }
    }
    class A {
        X x;
        Y y;
        void foo(Y y) {
            sync (this) {
                var b = this;
                var t = b.x;
                t.o = rand();
                b.y = y;
            }
        }
        void bar(Z z) { this.x = z.w; }
    }
    test seed {
        var x = new X();
        var y = new Y();
        var z = new Z();
        var a = new A();
        z.baz(x);
        a.bar(z);
        a.foo(y);
    }
"#;

fn analyzed() -> (narada_lang::hir::Program, narada_core::Analysis) {
    let prog = narada_lang::compile(FIG13_FULL).unwrap();
    let mir = lower_program(&prog);
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    for t in &prog.tests {
        machine.run_test(t.id, &mut sink).unwrap();
    }
    let analysis = analyze(&prog, &sink.events);
    (prog, analysis)
}

fn method(prog: &narada_lang::hir::Program, name: &str) -> narada_lang::hir::MethodId {
    prog.methods.iter().find(|m| m.name == name).unwrap().id
}

fn field(prog: &narada_lang::hir::Program, class: &str, name: &str) -> PathField {
    let c = prog.class_by_name(class).unwrap();
    PathField::Field(prog.field_by_name(c, name).unwrap())
}

#[test]
fn fig11_label4_read_is_protected_and_not_writeable() {
    let (prog, analysis) = analyzed();
    let foo = method(&prog, "foo");
    // `t := b.x` — a read of field x while holding the lock on b (= this).
    let read_x = analysis
        .accesses
        .iter()
        .find(|a| {
            a.method == foo
                && !a.is_write
                && a.path
                    == Some(IPath {
                        root: PathRoot::This,
                        fields: vec![field(&prog, "A", "x")],
                    })
        })
        .expect("read of this.x inside foo");
    assert!(!read_x.writeable, "reads are never writeable");
    assert!(
        !read_x.unprotected,
        "paper: label 4 is protected — b is locked (L)"
    );
}

#[test]
fn fig11_label5_rand_write_is_unprotected_not_writeable() {
    let (prog, analysis) = analyzed();
    let foo = method(&prog, "foo");
    // `t.o := rand()` — the paper's unprotected access I1.x.o.
    let expected_path = IPath {
        root: PathRoot::This,
        fields: vec![field(&prog, "A", "x"), field(&prog, "X", "o")],
    };
    let write_o = analysis
        .accesses
        .iter()
        .find(|a| a.method == foo && a.is_write && a.path == Some(expected_path.clone()))
        .expect("write of this.x.o inside foo");
    assert!(
        write_o.unprotected,
        "paper: label 5 is unprotected — t is unlocked (U)"
    );
    assert!(
        !write_o.writeable,
        "paper: label 5 is not writeable — rand() is not controllable"
    );
    // The access happens with the receiver's lock held (lock on I_this).
    assert_eq!(write_o.locks.len(), 1);
    assert_eq!(
        write_o.locks[0].path,
        Some(IPath::root(PathRoot::This)),
        "the held lock is the receiver"
    );
}

#[test]
fn fig11_label6_param_write_is_writeable_but_protected() {
    let (prog, analysis) = analyzed();
    let foo = method(&prog, "foo");
    // `b.y := y` — writeable (both sides controllable), protected (b locked).
    let write_y = analysis
        .accesses
        .iter()
        .find(|a| {
            a.method == foo
                && a.is_write
                && a.path
                    == Some(IPath {
                        root: PathRoot::This,
                        fields: vec![field(&prog, "A", "y")],
                    })
        })
        .expect("write of this.y inside foo");
    assert!(
        write_y.writeable,
        "paper: label 6 is writeable — y and b are both controllable (C)"
    );
    assert!(
        !write_y.unprotected,
        "paper: label 6 is protected — b is locked (L)"
    );
}

#[test]
fn fig13_bar_summary_is_ithis_x_from_ip0_w() {
    let (prog, analysis) = analyzed();
    let bar = method(&prog, "bar");
    // Paper: D for bar contains (Ithis.x ⤳ Iz.w).
    let s = analysis
        .setters
        .iter()
        .find(|s| s.method == bar)
        .expect("bar has a writeable-assignment summary");
    assert_eq!(
        s.lhs,
        IPath {
            root: PathRoot::This,
            fields: vec![field(&prog, "A", "x")],
        },
        "lhs is I_this.x"
    );
    assert_eq!(
        s.rhs,
        IPath {
            root: PathRoot::Param(0),
            fields: vec![field(&prog, "Z", "w")],
        },
        "rhs is I_p0.w — the field of the parameter"
    );
}

#[test]
fn fig13_baz_summary_is_ithis_w_from_ip0() {
    let (prog, analysis) = analyzed();
    let baz = method(&prog, "baz");
    let s = analysis
        .setters
        .iter()
        .find(|s| s.method == baz)
        .expect("baz has a writeable-assignment summary");
    assert_eq!(
        s.lhs,
        IPath {
            root: PathRoot::This,
            fields: vec![field(&prog, "Z", "w")],
        }
    );
    assert_eq!(s.rhs, IPath::root(PathRoot::Param(0)));
}

#[test]
fn fig11_foo_y_write_summary_relates_receiver_to_argument() {
    let (prog, analysis) = analyzed();
    let foo = method(&prog, "foo");
    // §3.2: D at label 6 is { I1.y ⤳ I2 } — receiver's y from the argument.
    let s = analysis
        .setters
        .iter()
        .find(|s| s.method == foo)
        .expect("foo's b.y := y produces a summary");
    assert_eq!(
        s.lhs,
        IPath {
            root: PathRoot::This,
            fields: vec![field(&prog, "A", "y")],
        }
    );
    assert_eq!(s.rhs, IPath::root(PathRoot::Param(0)));
}

#[test]
fn return_summary_for_factory_pattern() {
    // §3.2's foo(x,y) return example: the returned object exposes the
    // client parameters at Ir.z and Ir.z.f.
    let src = r#"
        class W { P z; }
        class P { Q f; }
        class Q { }
        class F {
            static W foo(P x, Q y) {
                x.f = y;
                var w = new W();
                w.z = x;
                return w;
            }
        }
        test seed {
            var x = new P();
            var y = new Q();
            var w = F.foo(x, y);
        }
    "#;
    let prog = narada_lang::compile(src).unwrap();
    let mir = lower_program(&prog);
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    machine.run_test(prog.tests[0].id, &mut sink).unwrap();
    let analysis = analyze(&prog, &sink.events);
    let foo = prog.methods.iter().find(|m| m.name == "foo").unwrap().id;

    let w = prog.class_by_name("W").unwrap();
    let p = prog.class_by_name("P").unwrap();
    let z = PathField::Field(prog.field_by_name(w, "z").unwrap());
    let f = PathField::Field(prog.field_by_name(p, "f").unwrap());

    // { Ir.z ⤳ Ix }
    assert!(
        analysis.returns.iter().any(|r| {
            r.method == foo
                && r.ret_path.fields == vec![z]
                && r.src == IPath::root(PathRoot::Param(0))
        }),
        "expected Ir.z ⤳ I_p0; got {:?}",
        analysis.returns
    );
    // { Ir.z.f ⤳ Iy }
    assert!(
        analysis.returns.iter().any(|r| {
            r.method == foo
                && r.ret_path.fields == vec![z, f]
                && r.src == IPath::root(PathRoot::Param(1))
        }),
        "expected Ir.z.f ⤳ I_p1; got {:?}",
        analysis.returns
    );
}

#[test]
fn ctor_accesses_are_flagged_in_ctor() {
    let src = r#"
        class C {
            int v;
            init(int v) { this.v = v; }
            void poke() { this.v = this.v + 1; }
        }
        test seed { var c = new C(5); c.poke(); }
    "#;
    let prog = narada_lang::compile(src).unwrap();
    let mir = lower_program(&prog);
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sink = VecSink::new();
    machine.run_test(prog.tests[0].id, &mut sink).unwrap();
    let analysis = analyze(&prog, &sink.events);
    let ctor_writes: Vec<_> = analysis
        .accesses
        .iter()
        .filter(|a| a.is_write && a.in_ctor)
        .collect();
    assert!(!ctor_writes.is_empty(), "ctor write recorded");
    // §4: constructors' unprotected accesses are discarded by the pair
    // generator but the setter summary survives (ctors set context).
    let ctor = prog.methods.iter().find(|m| m.is_ctor).unwrap().id;
    assert!(
        analysis.setters.iter().any(|s| s.method == ctor),
        "ctor setter summary kept: {:?}",
        analysis.setters
    );
}
