//! Error paths of the test-plan executor: every failure mode must surface
//! as a typed [`ExecError`] rather than a panic or a silent no-op.

use narada_core::context::{CaptureSpec, ObjRef, PlanCall, Slot, TestPlan};
use narada_core::{execute_plan, ExecError, RaceKey, SynthesisOptions};
use narada_lang::hir::FieldId;
use narada_lang::lower::lower_program;
use narada_vm::{Label, Machine, NullSink, RoundRobin};

const LIB: &str = r#"
    class C {
        int v;
        void poke() { this.v = this.v + 1; }
        void never() { this.v = 0; }
    }
    test seed { var c = new C(); c.poke(); }
"#;

fn plan_with_capture_of(method: narada_lang::hir::MethodId, n_params: usize) -> TestPlan {
    let call = |cap: usize| PlanCall {
        method,
        recv: Some(ObjRef::Capture {
            capture: cap,
            slot: Slot::Recv,
        }),
        args: (0..n_params)
            .map(|i| ObjRef::Capture {
                capture: cap,
                slot: Slot::Arg(i),
            })
            .collect(),
        stop_after: None,
    };
    TestPlan {
        captures: vec![CaptureSpec { method }, CaptureSpec { method }],
        builders: vec![],
        setters: vec![],
        racy: [call(0), call(1)],
        key: RaceKey::Field(FieldId(0)),
        labels: (Label(0), Label(0)),
        anchors: None,
        expects_race: false,
    }
}

#[test]
fn capture_miss_is_reported() {
    // `never` is not invoked by any seed test, so object collection cannot
    // find a call site for it.
    let prog = narada_lang::compile(LIB).unwrap();
    let mir = lower_program(&prog);
    let never = prog.methods.iter().find(|m| m.name == "never").unwrap().id;
    let plan = plan_with_capture_of(never, 0);
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sched = RoundRobin::new();
    let err = execute_plan(
        &mut machine,
        &seeds,
        &plan,
        &mut sched,
        &mut NullSink,
        100_000,
    )
    .expect_err("capture must miss");
    assert!(matches!(err, ExecError::CaptureMissed(_)), "{err}");
    assert!(err.to_string().contains("never"), "{err}");
}

#[test]
fn failing_seed_is_reported() {
    let prog = narada_lang::compile(
        r#"
        class C { int v; void poke() { this.v = 1; } }
        test seed { assert false; }
        "#,
    )
    .unwrap();
    let mir = lower_program(&prog);
    let poke = prog.methods.iter().find(|m| m.name == "poke").unwrap().id;
    let plan = plan_with_capture_of(poke, 0);
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sched = RoundRobin::new();
    let err = execute_plan(
        &mut machine,
        &seeds,
        &plan,
        &mut sched,
        &mut NullSink,
        100_000,
    )
    .expect_err("seed failure must propagate");
    assert!(matches!(err, ExecError::SeedFailed(_)), "{err}");
}

#[test]
fn crashing_racy_thread_is_a_report_not_an_error() {
    // A thread crash during the concurrent phase is *evidence*, not a
    // harness failure.
    let (prog, mir, out) = narada_core::synthesize_source(
        r#"
        class R {
            int[] buf;
            int n;
            init() { this.buf = new int[2]; this.n = 2; }
            int read() {
                if (this.n > 0) { return this.buf[this.n - 1]; }
                return 0 - 1;
            }
            void close() { this.buf = null; }
        }
        test seed { var r = new R(); var x = r.read(); r.close(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    // Find a close||read style plan and run under many schedules; a crash
    // must land in `failures`, never in Err.
    let mut saw_crash = false;
    for t in out.tests.iter().filter(|t| t.plan.expects_race) {
        for seed in 0..15 {
            let mut machine = Machine::with_defaults(&prog, &mir);
            let mut sched = narada_vm::RandomScheduler::new(seed);
            let report = execute_plan(
                &mut machine,
                &seeds,
                &t.plan,
                &mut sched,
                &mut NullSink,
                1_000_000,
            )
            .expect("executor must not error on thread crashes");
            if !report.failures.is_empty() {
                saw_crash = true;
                assert!(
                    report.failures.iter().any(|f| f.contains("null")),
                    "{:?}",
                    report.failures
                );
            }
        }
    }
    assert!(saw_crash, "close||read should crash under some schedule");
}
