//! Determinism regression suite for the work-sharded parallel pipeline:
//! the full pipeline (synthesis AND detection) must produce **serialized,
//! byte-identical** output at `threads = 1, 2, 8`.
//!
//! This is the contract that makes `--threads N` a pure throughput knob
//! (see `narada_core::parallel` for why it holds by construction). The
//! comparison is on serialized structures — pair lists, rendered plans,
//! detector verdicts — not on counts, so a scheduling-dependent reorder
//! or reseed cannot slip through as a coincidentally-equal total.

use narada_core::{synthesize, SynthesisOptions, SynthesisOutput};
use narada_detect::{evaluate_suite, evaluate_test_indexed, DetectConfig};
use narada_lang::hir::Program;
use narada_lang::lower::lower_program;
use narada_lang::mir::MirProgram;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Serializes everything observable about a synthesis run except wall
/// clocks: the dedup'd access list, the racing pairs, and every
/// synthesized plan (rendered source + covered pairs).
fn serialize_synthesis(prog: &Program, out: &SynthesisOutput) -> String {
    let mut s = String::new();
    s.push_str(&format!("accesses: {:#?}\n", out.pairs.accesses));
    s.push_str(&format!("pairs: {:#?}\n", out.pairs.pairs));
    for t in &out.tests {
        s.push_str(&format!(
            "== test #{} covers {:?} expects_race={}\n{}\n",
            t.index,
            t.covered_pairs,
            t.plan.expects_race,
            t.plan.render(prog)
        ));
    }
    s
}

/// Serializes the detection verdicts for a whole suite: per-test detected
/// races and confirmations, plus the aggregate counters.
fn serialize_detection(
    prog: &Program,
    mir: &MirProgram,
    out: &SynthesisOutput,
    threads: usize,
) -> String {
    let cfg = DetectConfig {
        schedule_trials: 3,
        confirm_trials: 2,
        seed: 0xd15c,
        budget: 2_000_000,
        threads,
        ..DetectConfig::default()
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut s = String::new();
    // Per-test reports through the sharded trial runner...
    for (i, t) in out.tests.iter().enumerate().take(6) {
        let rep = evaluate_test_indexed(prog, mir, &seeds, &t.plan, &cfg, i as u64);
        s.push_str(&format!(
            "test {i}: detected={:?} reproduced={:?} errors={:?}\n",
            rep.detected, rep.reproduced, rep.setup_errors
        ));
    }
    // ...and the suite-level aggregation (plan-sharded fan-out).
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = evaluate_suite(prog, mir, &seeds, &plans, &cfg);
    s.push_str(&format!(
        "suite: detected={} harmful={} benign={} unreproduced={} per_test={:?}\n",
        agg.races_detected, agg.harmful, agg.benign, agg.unreproduced, agg.per_test_races
    ));
    s
}

fn assert_thread_count_invariant(entry: narada_corpus::CorpusEntry) {
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);

    let reference_synth;
    let reference_detect;
    {
        let out = synthesize(
            &prog,
            &mir,
            &SynthesisOptions {
                threads: 1,
                ..SynthesisOptions::default()
            },
        );
        reference_synth = serialize_synthesis(&prog, &out);
        reference_detect = serialize_detection(&prog, &mir, &out, 1);
    }

    for threads in THREAD_COUNTS {
        let out = synthesize(
            &prog,
            &mir,
            &SynthesisOptions {
                threads,
                ..SynthesisOptions::default()
            },
        );
        assert_eq!(
            out.timings.threads, threads,
            "{}: timings must record the effective worker count",
            entry.id
        );
        let synth = serialize_synthesis(&prog, &out);
        assert!(
            synth == reference_synth,
            "{}: synthesis output diverged at threads={threads}\n--- threads=1 ---\n{}\n--- threads={threads} ---\n{}",
            entry.id,
            &reference_synth[..reference_synth.len().min(2000)],
            &synth[..synth.len().min(2000)],
        );
        let detect = serialize_detection(&prog, &mir, &out, threads);
        assert!(
            detect == reference_detect,
            "{}: detection verdicts diverged at threads={threads}\n--- threads=1 ---\n{}\n--- threads={threads} ---\n{}",
            entry.id,
            reference_detect,
            detect,
        );
    }
}

#[test]
fn c1_pipeline_is_thread_count_invariant() {
    assert_thread_count_invariant(narada_corpus::c1());
}

#[test]
fn c5_pipeline_is_thread_count_invariant() {
    assert_thread_count_invariant(narada_corpus::c5());
}
