//! End-to-end tests of the synthesis pipeline on the paper's own examples.

use narada_core::{execute_plan, synthesize_source, PathRoot, SynthesisOptions};
use narada_vm::{Machine, NullSink, RandomScheduler, Value};

/// Fig. 1: `update` is synchronized on the receiver, but two `Lib` objects
/// sharing one `Counter` race on `count`.
const FIG1: &str = r#"
    class Counter {
        int count;
        void inc() { this.count = this.count + 1; }
    }
    class Lib {
        Counter c;
        sync void update() { this.c.inc(); }
        sync void set(Counter x) { this.c = x; }
    }
    test seed {
        var r = new Counter();
        var p = new Lib();
        p.set(r);
        p.update();
    }
"#;

/// Fig. 13: setting the context needs `z.baz(x); a.bar(z); a2.bar(z);`.
const FIG13: &str = r#"
    class X { int o; }
    class Y { }
    class Z {
        X w;
        void baz(X x) { this.w = x; }
    }
    class A {
        X x;
        Y y;
        void foo(Y y) {
            sync (this) {
                var b = this;
                var t = b.x;
                t.o = rand();
                b.y = y;
            }
        }
        void bar(Z z) { this.x = z.w; }
    }
    test seed {
        var x = new X();
        var y = new Y();
        var z = new Z();
        var a = new A();
        z.baz(x);
        a.bar(z);
        a.foo(y);
    }
"#;

/// Fig. 2–5: the hazelcast write-behind-queue pattern — the wrapper locks
/// `this` instead of the wrapped queue, so two wrappers around one queue
/// race. Context must be built through the factory (return summaries).
const HAZELCAST: &str = r#"
    class WriteBehindQueue {
        int size;
        void removeFirst() { this.size = this.size - 1; }
    }
    class SynchronizedWriteBehindQueue extends WriteBehindQueue {
        WriteBehindQueue queue;
        init(WriteBehindQueue q) { this.queue = q; }
        void removeFirst() {
            sync (this) { this.queue.removeFirst(); }
        }
    }
    class WriteBehindQueues {
        static WriteBehindQueue createCoalesced() {
            return new WriteBehindQueue();
        }
        static SynchronizedWriteBehindQueue createSafe(WriteBehindQueue q) {
            return new SynchronizedWriteBehindQueue(q);
        }
    }
    test seed {
        var cwbq = WriteBehindQueues.createCoalesced();
        var swbq = WriteBehindQueues.createSafe(cwbq);
        swbq.removeFirst();
        cwbq.removeFirst();
    }
"#;

#[test]
fn fig1_pairs_and_test_synthesized() {
    let (prog, _mir, out) = synthesize_source(FIG1, &SynthesisOptions::default()).unwrap();
    assert!(out.pair_count() >= 1, "count access must pair");
    assert!(out.test_count() >= 1);
    // The update||update plan must share through `set` with distinct
    // receivers.
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| {
            prog.method(p.racy[0].method).name == "update"
                && prog.method(p.racy[1].method).name == "update"
        })
        .expect("update||update test");
    assert!(plan.expects_race, "{}", plan.render(&prog));
    assert!(
        plan.setters
            .iter()
            .any(|s| prog.method(s.method).name == "set"),
        "context must route through set():\n{}",
        plan.render(&prog)
    );
    assert_ne!(
        plan.racy[0].recv, plan.racy[1].recv,
        "receivers must stay distinct (both lock this)"
    );
    // Both setters install the SAME shared Counter.
    let shared_args: Vec<_> = plan
        .setters
        .iter()
        .filter(|s| prog.method(s.method).name == "set")
        .flat_map(|s| s.args.clone())
        .collect();
    assert!(shared_args.len() >= 2);
    assert!(
        shared_args.windows(2).all(|w| w[0] == w[1]),
        "set() must receive the same Counter for both receivers:\n{}",
        plan.render(&prog)
    );
}

#[test]
fn fig1_unprotected_access_identified() {
    let (prog, _mir, out) = synthesize_source(FIG1, &SynthesisOptions::default()).unwrap();
    // The count access path is I_this.c.count within update().
    let acc = out
        .pairs
        .accesses
        .iter()
        .find(|a| a.unprotected && a.is_write)
        .expect("unprotected write on count");
    assert_eq!(prog.method(acc.method).name, "update");
    let p = acc.path.as_ref().unwrap();
    assert_eq!(p.root, PathRoot::This);
    assert_eq!(p.depth(), 2, "I_this.c.count");
}

#[test]
fn fig1_executed_plan_can_lose_update() {
    let (prog, mir, out) = synthesize_source(FIG1, &SynthesisOptions::default()).unwrap();
    let test = out
        .tests
        .iter()
        .find(|t| prog.method(t.plan.racy[0].method).name == "update" && t.plan.expects_race)
        .expect("update||update test");
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    let counter = prog.class_by_name("Counter").unwrap();
    let count = prog.field_by_name(counter, "count").unwrap();

    let mut outcomes = std::collections::HashSet::new();
    for seed in 0..30 {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sched = RandomScheduler::new(seed);
        let report = execute_plan(
            &mut machine,
            &seeds,
            &test.plan,
            &mut sched,
            &mut NullSink,
            1_000_000,
        )
        .expect("plan must execute");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // Find the shared counter: the receiver of thread 1's update, field
        // c — read its count.
        // (All Counter instances: exactly one should have been bumped.)
        let mut counts = vec![];
        for i in 0..machine.heap.len() as u32 {
            let o = narada_vm::ObjId(i);
            if machine.heap.class_of(o) == Some(counter) {
                if let Value::Int(n) = machine.heap.get_field(o, count) {
                    if n > 0 {
                        counts.push(n);
                    }
                }
            }
        }
        // The shared counter got either 1 (lost update — the race fired!)
        // or 2 (both increments survived).
        assert_eq!(counts.len(), 1, "exactly one shared counter is bumped");
        outcomes.insert(counts[0]);
    }
    assert!(
        outcomes.contains(&1),
        "some schedule must lose an update (observed: {outcomes:?})"
    );
    assert!(
        outcomes.contains(&2),
        "some schedule must keep both updates (observed: {outcomes:?})"
    );
}

#[test]
fn fig13_derives_baz_then_bar() {
    let (prog, _mir, out) = synthesize_source(FIG13, &SynthesisOptions::default()).unwrap();
    // The unprotected access is t.o (= I_this.x.o) inside foo — protected
    // by lock on this, but the owner this.x is unlocked.
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| {
            prog.method(p.racy[0].method).name == "foo"
                && prog.method(p.racy[1].method).name == "foo"
                && p.expects_race
        })
        .unwrap_or_else(|| {
            panic!(
                "foo||foo plan expected; got:\n{}",
                out.tests
                    .iter()
                    .map(|t| t.plan.render(&prog))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
    // Context: bar must be invoked on both receivers; the shared X routes
    // through baz (bar's source is z.w, a field of its parameter).
    let setter_names: Vec<_> = plan
        .setters
        .iter()
        .map(|s| prog.method(s.method).name.as_str())
        .collect();
    assert!(
        setter_names.contains(&"bar"),
        "setters: {setter_names:?}\n{}",
        plan.render(&prog)
    );
    assert!(
        setter_names.contains(&"baz"),
        "baz must prepare bar's argument: {setter_names:?}\n{}",
        plan.render(&prog)
    );
    // baz runs before the bar that consumes its target.
    let baz_pos = setter_names.iter().position(|n| *n == "baz").unwrap();
    let bar_pos = setter_names.iter().position(|n| *n == "bar").unwrap();
    assert!(baz_pos < bar_pos, "inner context first: {setter_names:?}");
}

#[test]
fn hazelcast_builder_route() {
    let (prog, _mir, out) = synthesize_source(HAZELCAST, &SynthesisOptions::default()).unwrap();
    assert!(out.pair_count() >= 1);
    // A plan racing removeFirst through two wrappers must build the
    // wrappers via the factory/constructor with a shared inner queue.
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| {
            let m0 = prog.method(p.racy[0].method);
            let m1 = prog.method(p.racy[1].method);
            m0.name == "removeFirst"
                && m1.name == "removeFirst"
                && p.expects_race
                && (!p.builders.is_empty() || !p.setters.is_empty())
        })
        .unwrap_or_else(|| {
            panic!(
                "wrapper race plan expected; got:\n{}",
                out.tests
                    .iter()
                    .map(|t| t.plan.render(&prog))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
    assert!(plan.expects_race);
}

#[test]
fn hazelcast_race_reproduces_lost_decrement() {
    let (prog, mir, out) = synthesize_source(HAZELCAST, &SynthesisOptions::default()).unwrap();
    let sync_class = prog.class_by_name("SynchronizedWriteBehindQueue").unwrap();
    let test = out
        .tests
        .iter()
        .find(|t| {
            let p = &t.plan;
            let m0 = prog.method(p.racy[0].method);
            m0.name == "removeFirst" && m0.owner == sync_class && p.expects_race
        })
        .expect("synchronized wrapper race test");
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let base = prog.class_by_name("WriteBehindQueue").unwrap();
    let size = prog.field_by_name(base, "size").unwrap();

    let mut outcomes = std::collections::HashSet::new();
    for seed in 0..40 {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sched = RandomScheduler::new(seed);
        let report = execute_plan(
            &mut machine,
            &seeds,
            &test.plan,
            &mut sched,
            &mut NullSink,
            1_000_000,
        )
        .expect("plan must execute");
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let mut sizes = vec![];
        for i in 0..machine.heap.len() as u32 {
            let o = narada_vm::ObjId(i);
            if machine.heap.class_of(o) == Some(base) {
                if let Value::Int(n) = machine.heap.get_field(o, size) {
                    if n < 0 {
                        sizes.push(n);
                    }
                }
            }
        }
        outcomes.extend(sizes);
    }
    assert!(
        outcomes.contains(&-1),
        "some schedule must lose a decrement (observed {outcomes:?})"
    );
    assert!(
        outcomes.contains(&-2),
        "some schedule must apply both decrements (observed {outcomes:?})"
    );
}

#[test]
fn fully_synchronized_class_yields_no_expected_races() {
    let (_prog, _mir, out) = synthesize_source(
        r#"
        class Safe {
            int v;
            sync void set(int x) { this.v = x; }
            sync int get() { return this.v; }
        }
        test seed {
            var s = new Safe();
            s.set(1);
            var x = s.get();
        }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    // Accesses on `this.v` are protected by the receiver lock; sharing the
    // receivers would share the lock, so no race-expecting plan exists.
    assert!(
        out.tests.iter().all(|t| !t.plan.expects_race),
        "a fully synchronized class must not produce race-expecting plans"
    );
}

#[test]
fn unsynchronized_class_direct_receiver_sharing() {
    let (prog, _mir, out) = synthesize_source(
        r#"
        class Naked {
            int v;
            void bump() { this.v = this.v + 1; }
        }
        test seed { var n = new Naked(); n.bump(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    // No locks at all: the receivers themselves can be shared.
    let plan = &out
        .tests
        .iter()
        .find(|t| t.plan.expects_race)
        .expect("race-expecting plan")
        .plan;
    assert_eq!(
        plan.racy[0].recv,
        plan.racy[1].recv,
        "receivers should be shared when nothing locks them:\n{}",
        plan.render(&prog)
    );
    assert!(plan.setters.is_empty());
}

#[test]
fn dedup_fewer_tests_than_pairs() {
    // Reads and writes to one field across two methods form several pairs
    // that fold into fewer tests (paper §5: multiple pairs per test).
    let (_prog, _mir, out) = synthesize_source(
        r#"
        class M {
            int a;
            void w1() { this.a = 1; }
            void w2() { this.a = 2; var x = this.a; }
        }
        test seed { var m = new M(); m.w1(); m.w2(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    assert!(
        out.pair_count() > out.test_count(),
        "pairs {} vs tests {}",
        out.pair_count(),
        out.test_count()
    );
}

#[test]
fn synthesis_is_deterministic() {
    let run = || {
        let (_p, _m, out) = synthesize_source(FIG13, &SynthesisOptions::default()).unwrap();
        (
            out.pair_count(),
            out.test_count(),
            out.tests
                .iter()
                .map(|t| t.plan.dedup_key())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn seed_failures_are_reported_not_fatal() {
    let (_prog, _mir, out) = synthesize_source(
        r#"
        class C { int v; void ok() { this.v = 1; } }
        test bad { var c = new C(); assert false; }
        test good { var c = new C(); c.ok(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    assert_eq!(out.seed_failures.len(), 1);
    assert_eq!(out.seed_failures[0].0, "bad");
    assert!(out.pair_count() >= 1, "good seed still analyzed");
}
