//! Snapshot round-trip properties for the fork explorer's substrate.
//!
//! The fork explorer's correctness rests on one claim: a machine
//! restored (or rewound) to a fork point is *bit-for-bit* the machine
//! that paused there. This suite checks the claim across every corpus
//! class, both engines, every synthesized plan shape, and — via a probe
//! budget sweep — fork points landed mid-monitor (between `MonitorEnter`
//! and `MonitorExit`) and mid-array-write, the two states most likely to
//! smear across a buggy undo log. Oracles: the deterministic heap render
//! and the full-trace digest of the resumed run (the ISSUE's
//! "byte-identical (heap render + trace digest)").

use narada_core::synth::{execute_plan_prefix, execute_plan_suffix};
use narada_core::{synthesize_source, SynthesisOptions, TestPlan};
use narada_lang::hir::{Program, TestId};
use narada_lang::mir::MirProgram;
use narada_vm::{
    trace_digest, Engine, Machine, MachineOptions, NullSink, PctScheduler, RandomScheduler, VecSink,
};

const MACHINE_SEED: u64 = 0x5af0_4c5e;
const SCHED_SEED: u64 = 0x51de;
/// Fibonacci-ish probe budgets: cheap to run, lands probes at many
/// different depths into the suffix (including 1-step probes that stop
/// right inside the first monitor acquisition of `sync` classes).
const PROBE_BUDGETS: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 34, 55];

fn machine_for<'p>(prog: &'p Program, mir: &'p MirProgram, engine: Engine) -> Machine<'p> {
    Machine::new(
        prog,
        mir,
        MachineOptions {
            seed: MACHINE_SEED,
            engine,
            ..MachineOptions::default()
        },
    )
}

/// Reference: one uninterrupted prefix+suffix run. Returns (full trace
/// digest, final heap render, heap render at the fork point is captured
/// by the caller from its own run).
fn reference_run(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    engine: Engine,
) -> Option<(u64, String)> {
    let mut m = machine_for(prog, mir, engine);
    let mut sink = VecSink::new();
    let prefix = execute_plan_prefix(&mut m, seeds, plan, &mut sink).ok()?;
    let mut sched = PctScheduler::new(SCHED_SEED, 3, 1_000);
    execute_plan_suffix(&mut m, plan, &prefix, &mut sched, &mut sink, 1_000_000).ok()?;
    Some((trace_digest(&sink.events), m.heap.render()))
}

/// The property, for one (plan, engine): run the prefix once, then
/// mark → probe K steps under a *different* scheduler → rewind, for a
/// sweep of K; after all that vandalism the resumed suffix must be
/// byte-identical to the uninterrupted reference. Also checks the owned
/// snapshot the same way on fresh machines of both engines.
fn check_plan(
    prog: &Program,
    mir: &MirProgram,
    seeds: &[TestId],
    plan: &TestPlan,
    engine: Engine,
) -> bool {
    let Some((ref_digest, ref_heap)) = reference_run(prog, mir, seeds, plan, engine) else {
        return false; // plan doesn't execute (capture miss etc.) — skip
    };

    let mut m = machine_for(prog, mir, engine);
    let mut sink = VecSink::new();
    let prefix = execute_plan_prefix(&mut m, seeds, plan, &mut sink).expect("prefix re-runs");
    assert_eq!(m.rng_draws(), 0, "corpus prefixes must be seed-independent");
    let prefix_len = sink.events.len();
    let fork_heap = m.heap.render();
    let snap = m.snapshot();

    // In-place mark/rewind probes at every budget.
    let mark = m.mark();
    for (i, &k) in PROBE_BUDGETS.iter().enumerate() {
        let mut vandal = RandomScheduler::new(SCHED_SEED ^ (i as u64) << 32 | k);
        let mut null = NullSink;
        // Probe outcome irrelevant (may hit the step limit mid-monitor /
        // mid-array-write — the point); only the rewind matters.
        let _ = execute_plan_suffix(&mut m, plan, &prefix, &mut vandal, &mut null, k);
        m.rewind(&mark);
        assert_eq!(
            m.heap.render(),
            fork_heap,
            "heap not restored after {k}-step probe (engine {engine:?})"
        );
    }

    // Resume for real on the vandalized-then-rewound machine.
    let mut sched = PctScheduler::new(SCHED_SEED, 3, 1_000);
    execute_plan_suffix(&mut m, plan, &prefix, &mut sched, &mut sink, 1_000_000)
        .expect("reference suffix re-runs");
    assert_eq!(
        trace_digest(&sink.events),
        ref_digest,
        "trace diverged after probe storm (engine {engine:?})"
    );
    assert_eq!(
        m.heap.render(),
        ref_heap,
        "final heap diverged (engine {engine:?})"
    );

    // Owned-snapshot restore, onto fresh machines of *both* engines: a
    // fork point is engine-portable state.
    for restore_engine in [Engine::TreeWalk, Engine::Bytecode] {
        let mut fresh = machine_for(prog, mir, restore_engine);
        fresh.restore(&snap);
        assert_eq!(fresh.heap.render(), fork_heap, "restore(snapshot) heap");
        // Pre-load the shared prefix events so the digest compares the
        // full trace against the uninterrupted reference.
        let mut sink2 = VecSink::new();
        sink2.events = sink.events[..prefix_len].to_vec();
        let mut sched = PctScheduler::new(SCHED_SEED, 3, 1_000);
        execute_plan_suffix(&mut fresh, plan, &prefix, &mut sched, &mut sink2, 1_000_000)
            .expect("suffix from restored snapshot");
        assert_eq!(
            trace_digest(&sink2.events),
            ref_digest,
            "snapshot restored on {restore_engine:?} diverged from {engine:?} reference"
        );
        assert_eq!(fresh.heap.render(), ref_heap);
    }
    true
}

fn class_suite(engine: Engine) {
    let mut plans_checked = 0usize;
    for entry in narada_corpus::all() {
        let (prog, mir, out) = synthesize_source(
            entry.source,
            &SynthesisOptions {
                threads: 1,
                ..SynthesisOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e:?}", entry.id));
        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
        for t in out.tests.iter().take(2) {
            if check_plan(&prog, &mir, &seeds, &t.plan, engine) {
                plans_checked += 1;
            }
        }
    }
    assert!(
        plans_checked >= 9,
        "snapshot property must exercise most corpus classes (got {plans_checked})"
    );
}

#[test]
fn snapshot_round_trip_treewalk() {
    class_suite(Engine::TreeWalk);
}

#[test]
fn snapshot_round_trip_bytecode() {
    class_suite(Engine::Bytecode);
}
