//! §4 partial invocations: "there can be a strong non-controllable update
//! to a field after the controllable assignment, which can override the
//! earlier update … We handle it by letting a separate thread invoke the
//! method and suspend its execution at the label corresponding to the
//! writeable assignment or the closest point where all held locks are
//! released."

use narada_core::{execute_plan, synthesize_source, SynthesisOptions};
use narada_vm::{Machine, NullSink, RandomScheduler, ThreadStatus, Value};

/// `set` installs the client object, then clobbers the field with a fresh
/// library-internal allocation. Running it to completion would destroy the
/// sharing the race needs.
const CLOBBERING_SETTER: &str = r#"
    class X { int o; }
    class H {
        X x;
        void set(X v) {
            this.x = v;
            this.x = new X();
        }
        void touch() {
            this.x.o = this.x.o + 1;
        }
    }
    test seed {
        var x = new X();
        var h = new H();
        h.set(x);
        h.touch();
    }
"#;

#[test]
fn clobbered_setter_summary_is_flagged() {
    let (prog, _mir, out) =
        synthesize_source(CLOBBERING_SETTER, &SynthesisOptions::default()).unwrap();
    let set = prog.methods.iter().find(|m| m.name == "set").unwrap().id;
    let summary = out
        .analysis
        .setters
        .iter()
        .find(|s| s.method == set)
        .expect("set has a writeable-assignment summary");
    assert!(
        summary.overwritten,
        "the later `this.x = new X()` must flag the summary (§4)"
    );
}

#[test]
fn plan_uses_partial_invocation_for_clobbered_setter() {
    let (prog, _mir, out) =
        synthesize_source(CLOBBERING_SETTER, &SynthesisOptions::default()).unwrap();
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| {
            prog.method(p.racy[0].method).name == "touch"
                && prog.method(p.racy[1].method).name == "touch"
                && p.expects_race
        })
        .expect("touch||touch plan with sharing");
    let setter = plan
        .setters
        .iter()
        .find(|s| prog.method(s.method).name == "set")
        .expect("context routes through set()");
    assert!(
        setter.stop_after.is_some(),
        "set() must be invoked partially:\n{}",
        plan.render(&prog)
    );
}

#[test]
fn partial_execution_preserves_the_shared_context() {
    let (prog, mir, out) =
        synthesize_source(CLOBBERING_SETTER, &SynthesisOptions::default()).unwrap();
    let test = out
        .tests
        .iter()
        .find(|t| prog.method(t.plan.racy[0].method).name == "touch" && t.plan.expects_race)
        .expect("touch||touch test");
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let h_class = prog.class_by_name("H").unwrap();
    let x_field = prog.field_by_name(h_class, "x").unwrap();

    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sched = RandomScheduler::new(5);
    let report = execute_plan(
        &mut machine,
        &seeds,
        &test.plan,
        &mut sched,
        &mut NullSink,
        2_000_000,
    )
    .expect("plan executes");
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    // Both racy receivers' x fields must point at ONE shared object — the
    // partial invocation stopped before the clobbering write.
    let racy_xs: Vec<Value> = (0..machine.heap.len() as u32)
        .map(narada_vm::ObjId)
        .filter(|&o| machine.heap.class_of(o) == Some(h_class))
        .map(|o| machine.heap.get_field(o, x_field))
        .collect();
    let shared: Vec<_> = racy_xs
        .iter()
        .filter(|v| racy_xs.iter().filter(|w| w == v).count() >= 2)
        .collect();
    assert!(
        !shared.is_empty(),
        "two H receivers must share one X: {racy_xs:?}"
    );

    // The parked partial-invocation threads are still parked (not failed).
    let parked = (0..machine.thread_count() as u32)
        .map(narada_vm::ThreadId)
        .filter(|&t| *machine.thread_status(t) == ThreadStatus::Parked)
        .count();
    assert!(parked >= 1, "partial setters leave parked threads");
}

#[test]
fn normal_setters_still_run_to_completion() {
    // A setter without a clobbering write keeps stop_after == None.
    let (prog, _mir, out) = synthesize_source(
        r#"
        class X { int o; }
        class H {
            X x;
            void set(X v) { this.x = v; }
            void touch() { this.x.o = this.x.o + 1; }
        }
        test seed { var x = new X(); var h = new H(); h.set(x); h.touch(); }
        "#,
        &SynthesisOptions::default(),
    )
    .unwrap();
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| prog.method(p.racy[0].method).name == "touch" && p.expects_race)
        .expect("touch plan");
    assert!(plan.setters.iter().all(|s| s.stop_after.is_none()));
}
