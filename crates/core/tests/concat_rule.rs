//! The `Q` *concat* rule (paper Fig. 10/Fig. 12): when no single method
//! assigns the whole dereference chain `x.f.g`, compose a setter for `f`
//! with a setter for `g` on a fresh intermediate object — `n` then `m` in
//! the paper's Fig. 12.

use narada_core::{synthesize_source, SynthesisOptions};

/// `M.use` races on `I_this.f.g.o`; sharing needs `I_this.f.g` to alias.
/// There is no method assigning `f.g` in one step — the deriver must chain
/// `setG` (inner, on a fresh N) before `setF` (outer install).
const CONCAT: &str = r#"
    class X { int o; }
    class N {
        X g;
        void setG(X v) { this.g = v; }
    }
    class M {
        N f;
        void setF(N v) { this.f = v; }
        sync void use() {
            var n = this.f;
            var x = n.g;
            x.o = x.o + 1;
        }
    }
    test seed {
        var x = new X();
        var n = new N();
        var m = new M();
        n.setG(x);
        m.setF(n);
        m.use();
    }
"#;

#[test]
fn concat_chains_inner_setter_before_outer() {
    let (prog, _mir, out) = synthesize_source(CONCAT, &SynthesisOptions::default()).unwrap();
    let plan = out
        .tests
        .iter()
        .map(|t| &t.plan)
        .find(|p| {
            prog.method(p.racy[0].method).name == "use"
                && prog.method(p.racy[1].method).name == "use"
                && p.expects_race
        })
        .unwrap_or_else(|| {
            panic!(
                "use||use plan expected:\n{}",
                out.tests
                    .iter()
                    .map(|t| t.plan.render(&prog))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        });
    let names: Vec<&str> = plan
        .setters
        .iter()
        .map(|s| prog.method(s.method).name.as_str())
        .collect();
    assert!(names.contains(&"setF"), "{names:?}\n{}", plan.render(&prog));
    assert!(names.contains(&"setG"), "{names:?}\n{}", plan.render(&prog));
    // Fig. 12 order: the inner object's field is set before it is
    // installed (`z.baz(x); a.bar(z);`).
    let g_pos = names.iter().position(|n| *n == "setG").unwrap();
    let f_pos = names.iter().position(|n| *n == "setF").unwrap();
    assert!(g_pos < f_pos, "inner setter first: {names:?}");
}

#[test]
fn concat_execution_shares_the_deep_object() {
    use narada_core::execute_plan;
    use narada_vm::{Machine, NullSink, RandomScheduler, Value};

    let (prog, mir, out) = synthesize_source(CONCAT, &SynthesisOptions::default()).unwrap();
    let test = out
        .tests
        .iter()
        .find(|t| prog.method(t.plan.racy[0].method).name == "use" && t.plan.expects_race)
        .unwrap();
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    let m_class = prog.class_by_name("M").unwrap();
    let n_class = prog.class_by_name("N").unwrap();
    let f = prog.field_by_name(m_class, "f").unwrap();
    let g = prog.field_by_name(n_class, "g").unwrap();

    let mut machine = Machine::with_defaults(&prog, &mir);
    let mut sched = RandomScheduler::new(1);
    let report = execute_plan(
        &mut machine,
        &seeds,
        &test.plan,
        &mut sched,
        &mut NullSink,
        1_000_000,
    )
    .expect("plan executes");
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    // The two racy receivers must reach one shared X through f.g.
    let deep_x: Vec<Value> = (0..machine.heap.len() as u32)
        .map(narada_vm::ObjId)
        .filter(|&o| machine.heap.class_of(o) == Some(m_class))
        .filter_map(|o| machine.heap.get_field(o, f).as_obj())
        .map(|n| machine.heap.get_field(n, g))
        .collect();
    let shared_exists = deep_x
        .iter()
        .any(|v| v.as_obj().is_some() && deep_x.iter().filter(|w| *w == v).count() >= 2);
    assert!(shared_exists, "f.g must alias across receivers: {deep_x:?}");
}
