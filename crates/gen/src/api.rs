//! API-surface model: what the generator may call, and with which bindings.
//!
//! A [`CallSpec`] records one client-callable library method together with
//! the concrete receiver classes and per-parameter concrete argument
//! classes the generator may bind it with; a [`CtorSpec`] does the same for
//! constructors. Two extractors build the surface:
//!
//! * [`ApiSurface::from_tests`] replays the program's existing sequential
//!   tests on the VM and keeps exactly the *observed* bindings — which
//!   method roots the client calls, which concrete classes show up as
//!   receivers and arguments. This matters for pair parity: the potential
//!   racy pair set keys on the dynamically-dispatched *root* method of each
//!   access, so generated suites must exercise the same client-call roots
//!   with the same concrete receiver classes as the suite they replace.
//! * [`ApiSurface::for_program`] derives a liberal surface from the HIR
//!   alone (every vtable entry point, every subtype-compatible binding)
//!   for programs that ship no tests to learn from.
//!
//! Both extractors also mine the scalar literal palette: every `int`
//! literal appearing in library code (plus small defaults), on the Randoop
//! observation that constants from the code under test make far better
//! inputs than uniform random values.

use narada_lang::hir::{Block, ClassId, Expr, MethodId, Place, Program, Stmt, Ty};
use narada_lang::mir::MirProgram;
use narada_vm::{EventKind, Machine, MachineOptions, ObjId, Value, VecSink};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One client-callable library method plus its legal bindings.
#[derive(Debug, Clone)]
pub struct CallSpec {
    /// The method to invoke (the *static* target; dispatch may select an
    /// override at run time depending on the receiver class).
    pub method: MethodId,
    /// Concrete classes the generator may use as the receiver. Empty for
    /// static methods.
    pub recv_classes: Vec<ClassId>,
    /// Per reference-typed parameter: the concrete classes the generator
    /// may bind it with. Scalar parameters carry an empty set.
    pub param_classes: Vec<Vec<ClassId>>,
}

/// How to construct instances of one class.
#[derive(Debug, Clone)]
pub struct CtorSpec {
    /// The class to instantiate.
    pub class: ClassId,
    /// The constructor `new class(…)` runs ([`Program::ctor_for`]); `None`
    /// when no constructor exists anywhere on the inheritance chain.
    pub ctor: Option<MethodId>,
    /// Per reference-typed constructor parameter: legal concrete argument
    /// classes.
    pub param_classes: Vec<Vec<ClassId>>,
}

/// The complete generation surface for one program.
#[derive(Debug, Clone, Default)]
pub struct ApiSurface {
    /// Client-callable methods, sorted by method id for determinism.
    pub calls: Vec<CallSpec>,
    /// Instantiable classes, sorted by class id for determinism.
    pub ctors: Vec<CtorSpec>,
    /// Scalar literal palette for `int` arguments (sorted, deduplicated).
    pub ints: Vec<i64>,
    /// Length palette for `new int[n]` arguments (sorted, deduplicated).
    pub array_lens: Vec<usize>,
}

impl ApiSurface {
    /// The constructor spec for `class`, if it is instantiable.
    pub fn ctor(&self, class: ClassId) -> Option<&CtorSpec> {
        self.ctors.iter().find(|c| c.class == class)
    }

    /// Extracts the surface *observed* while running the program's own
    /// sequential tests: client-call roots with their concrete receiver and
    /// argument classes, and constructor invocations at any depth (so a
    /// factory's internal `new` still teaches us how to build the object).
    pub fn from_tests(prog: &Program, mir: &MirProgram) -> ApiSurface {
        ApiSurface::from_tests_on(prog, mir, narada_vm::Engine::TreeWalk)
    }

    /// [`ApiSurface::from_tests`] on an explicit execution engine.
    pub fn from_tests_on(
        prog: &Program,
        mir: &MirProgram,
        engine: narada_vm::Engine,
    ) -> ApiSurface {
        let mut sink = VecSink::new();
        let mut machine = Machine::new(
            prog,
            mir,
            MachineOptions {
                engine,
                ..MachineOptions::default()
            },
        );
        for t in &prog.tests {
            // A failing seed still yields a usable prefix of events.
            let _ = machine.run_test(t.id, &mut sink);
        }

        // Concrete class of every allocated object (arrays carry `None`
        // and are excluded — they are rebuilt literally, not via specs).
        let mut obj_class: HashMap<ObjId, ClassId> = HashMap::new();
        let class_of = |map: &HashMap<ObjId, ClassId>, v: &Value| -> Option<ClassId> {
            v.as_obj().and_then(|o| map.get(&o).copied())
        };

        type Bindings = (BTreeSet<ClassId>, Vec<BTreeSet<ClassId>>);
        let mut calls: BTreeMap<MethodId, Bindings> = BTreeMap::new();
        let mut ctors: BTreeMap<ClassId, (Option<MethodId>, Vec<BTreeSet<ClassId>>)> =
            BTreeMap::new();

        for ev in sink.events.iter() {
            match &ev.kind {
                EventKind::Alloc {
                    obj,
                    class: Some(c),
                    ..
                } => {
                    obj_class.insert(*obj, *c);
                }
                EventKind::InvokeStart {
                    method: Some(m),
                    from_client,
                    recv,
                    args,
                    ..
                } => {
                    let meth = prog.method(*m);
                    if meth.is_ctor {
                        let Some(c) = recv.as_ref().and_then(|v| class_of(&obj_class, v)) else {
                            continue;
                        };
                        let entry = ctors
                            .entry(c)
                            .or_insert_with(|| (Some(*m), vec![BTreeSet::new(); args.len()]));
                        for (slot, arg) in args.iter().enumerate() {
                            if let Some(ac) = class_of(&obj_class, arg) {
                                entry.1[slot].insert(ac);
                            }
                        }
                    } else if *from_client {
                        let entry = calls.entry(*m).or_insert_with(|| {
                            (BTreeSet::new(), vec![BTreeSet::new(); args.len()])
                        });
                        if let Some(c) = recv.as_ref().and_then(|v| class_of(&obj_class, v)) {
                            entry.0.insert(c);
                        }
                        for (slot, arg) in args.iter().enumerate() {
                            if let Some(ac) = class_of(&obj_class, arg) {
                                entry.1[slot].insert(ac);
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Classes allocated without a constructor anywhere on their chain
        // still need a spec so the generator can `new` them.
        for &c in obj_class.values() {
            ctors
                .entry(c)
                .or_insert_with(|| (prog.ctor_for(c), Vec::new()));
        }

        let (ints, array_lens) = mine_ints(prog);
        ApiSurface {
            calls: calls
                .into_iter()
                .map(|(method, (recv, params))| CallSpec {
                    method,
                    recv_classes: recv.into_iter().collect(),
                    param_classes: params
                        .into_iter()
                        .map(|s| s.into_iter().collect())
                        .collect(),
                })
                .collect(),
            ctors: ctors
                .into_iter()
                .map(|(class, (ctor, params))| CtorSpec {
                    class,
                    ctor,
                    param_classes: params
                        .into_iter()
                        .map(|s| s.into_iter().collect())
                        .collect(),
                })
                .collect(),
            ints,
            array_lens,
        }
    }

    /// Derives a liberal surface from the HIR alone: every vtable entry
    /// point of every class is callable, and every reference slot accepts
    /// every subtype-compatible class. Used when the program has no tests
    /// to observe (`narada gen --full-api`).
    pub fn for_program(prog: &Program) -> ApiSurface {
        let concrete: Vec<ClassId> = prog.classes.iter().map(|c| c.id).collect();
        let assignable = |ty: &Ty| -> Vec<ClassId> {
            concrete
                .iter()
                .copied()
                .filter(|&k| prog.is_subtype(&Ty::Class(k), ty))
                .collect()
        };

        let mut calls: BTreeMap<MethodId, CallSpec> = BTreeMap::new();
        for class in &prog.classes {
            for m in prog.entry_points(class.id) {
                let meth = prog.method(m);
                let spec = calls.entry(m).or_insert_with(|| CallSpec {
                    method: m,
                    recv_classes: Vec::new(),
                    param_classes: meth.param_tys().iter().map(|t| assignable(t)).collect(),
                });
                if !meth.is_static && !spec.recv_classes.contains(&class.id) {
                    spec.recv_classes.push(class.id);
                }
            }
        }
        for spec in calls.values_mut() {
            spec.recv_classes.sort();
        }

        let ctors = concrete
            .iter()
            .map(|&c| {
                let ctor = prog.ctor_for(c);
                let param_classes = match ctor {
                    Some(m) => prog
                        .method(m)
                        .param_tys()
                        .iter()
                        .map(|t| assignable(t))
                        .collect(),
                    None => Vec::new(),
                };
                CtorSpec {
                    class: c,
                    ctor,
                    param_classes,
                }
            })
            .collect();

        let (ints, array_lens) = mine_ints(prog);
        ApiSurface {
            calls: calls.into_values().collect(),
            ctors,
            ints,
            array_lens,
        }
    }
}

/// Collects every `int` literal in the program (method bodies, field
/// initializers, and any existing tests) plus small defaults; array
/// lengths are the subset in `1..=16`.
fn mine_ints(prog: &Program) -> (Vec<i64>, Vec<usize>) {
    let mut ints: BTreeSet<i64> = BTreeSet::new();
    for m in &prog.methods {
        walk_block(&m.body, &mut ints);
    }
    for f in &prog.fields {
        if let Some(init) = &f.init {
            walk_expr(init, &mut ints);
        }
    }
    // Literals from existing tests matter as much as library constants:
    // a hand-written seed's key values decide which hit/miss branches its
    // trace exercises, and reaching the same states needs the same keys.
    for t in &prog.tests {
        walk_block(&t.body, &mut ints);
    }
    for d in [0, 1, 2, 3, 4, 8] {
        ints.insert(d);
    }
    let array_lens: Vec<usize> = ints
        .iter()
        .copied()
        .filter(|&v| (1..=16).contains(&v))
        .map(|v| v as usize)
        .collect();
    (ints.into_iter().collect(), array_lens)
}

fn walk_block(block: &Block, ints: &mut BTreeSet<i64>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => walk_expr(init, ints),
            Stmt::Assign { place, value, .. } => {
                walk_place(place, ints);
                walk_expr(value, ints);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                walk_expr(cond, ints);
                walk_block(then_blk, ints);
                if let Some(b) = else_blk {
                    walk_block(b, ints);
                }
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, ints);
                walk_block(body, ints);
            }
            Stmt::Sync { lock, body, .. } => {
                walk_expr(lock, ints);
                walk_block(body, ints);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    walk_expr(e, ints);
                }
            }
            Stmt::Assert { cond, .. } => walk_expr(cond, ints),
            Stmt::Expr(e) => walk_expr(e, ints),
        }
    }
}

fn walk_place(place: &Place, ints: &mut BTreeSet<i64>) {
    match place {
        Place::Local(_) => {}
        Place::Field { obj, .. } => walk_expr(obj, ints),
        Place::Index { arr, idx } => {
            walk_expr(arr, ints);
            walk_expr(idx, ints);
        }
    }
}

fn walk_expr(expr: &Expr, ints: &mut BTreeSet<i64>) {
    match expr {
        Expr::Int(v, _) => {
            ints.insert(*v);
        }
        Expr::GetField { obj, .. } => walk_expr(obj, ints),
        Expr::Index { arr, idx, .. } => {
            walk_expr(arr, ints);
            walk_expr(idx, ints);
        }
        Expr::ArrayLen { arr, .. } => walk_expr(arr, ints),
        Expr::New { args, .. } => args.iter().for_each(|a| walk_expr(a, ints)),
        Expr::NewArray { len, .. } => walk_expr(len, ints),
        Expr::Call { recv, args, .. } => {
            walk_expr(recv, ints);
            args.iter().for_each(|a| walk_expr(a, ints));
        }
        Expr::StaticCall { args, .. } => args.iter().for_each(|a| walk_expr(a, ints)),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, ints);
            walk_expr(rhs, ints);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, ints),
        Expr::Bool(..) | Expr::Null(..) | Expr::Local(..) | Expr::Rand(..) => {}
    }
}
