//! The feedback-directed generation loop.
//!
//! Each round builds a batch of candidate sequences from the current pool
//! (Randoop-style: clone an accepted sequence or start fresh, append
//! exactly one new call with pooled or freshly constructed inputs), runs
//! every candidate on the VM, and keeps a candidate only when its trace is
//! *novel* — running it through the Access Analyzer yields an access
//! classification, setter edge, or return edge not produced by any
//! previously accepted test. Error-throwing candidates are discarded, so
//! accepted prefixes are always legal, and the novelty oracle is exactly
//! the fact space the Pair Generator consumes — generation stops paying
//! for sequences the downstream pipeline would not learn from.
//!
//! ## Determinism
//!
//! Output is byte-identical at any `--threads`:
//!
//! * candidate *construction* is sequential, seeded per `(round, slot)`
//!   via [`derive_seed`] from the user seed, and reads only the
//!   round-start pool snapshot;
//! * candidate *execution* is sharded over fixed-size slot chunks through
//!   [`parallel_map`] (results return in submission order) with one
//!   machine per chunk, [`Machine::reset`] to a per-slot derived seed
//!   before each run — the trace never depends on which worker ran it;
//! * *acceptance* replays strictly in slot order against the shared
//!   novelty set, so the pool evolves identically regardless of thread
//!   count.

use crate::api::{ApiSurface, CallSpec};
use crate::sequence::{Arg, GenSequence, Step, StepKind};
use narada_core::access::Analysis;
use narada_core::{analyze, parallel_map, IPath, PathField};
use narada_lang::hir::{self, ClassId, MethodId, Program, TestId, Ty};
use narada_lang::lower::lower_test;
use narada_lang::mir::MirProgram;
use narada_obs::{span, Obs};
use narada_vm::rng::{derive_seed, SplitMix64};
use narada_vm::{Engine, Machine, MachineOptions, VecSink};
use std::collections::BTreeSet;
use std::time::Instant;

/// Stage tag for per-candidate machine seeds (see `derive_seed`).
const STAGE_GEN_MACHINE: u64 = 21;
/// Stage tag for per-candidate construction rngs.
const STAGE_GEN_BUILD: u64 = 22;
/// Candidates per executor chunk; fixed so sharding is thread-invariant.
const CHUNK: usize = 8;
/// Step budget per candidate run: generated sequences are tiny, so
/// anything that runs long is stuck (e.g. an aliasing-induced infinite
/// loop) and should be discarded quickly.
const CAND_STEP_BUDGET: u64 = 200_000;

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Total candidate budget.
    pub budget: usize,
    /// Base seed; all per-candidate seeds derive from it.
    pub seed: u64,
    /// Worker threads for candidate execution (0 = all cores).
    pub threads: usize,
    /// Maximum steps per sequence (pool growth cap). Keeps novelty search
    /// from chasing size-dependent library branches (e.g. the backing
    /// array growth path of a queue with capacity 8).
    pub max_len: usize,
    /// Candidates constructed per round; each round's candidates see the
    /// same pool snapshot.
    pub round: usize,
    /// Execution engine for candidate runs and basis replay
    /// (trace-equivalent to tree-walk; a throughput knob).
    pub engine: Engine,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            budget: 512,
            seed: 0x67656e,
            threads: 0,
            max_len: 10,
            round: 64,
            engine: Engine::TreeWalk,
        }
    }
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Candidates constructed (including shape rejects).
    pub candidates: u64,
    /// Candidates accepted into the pool.
    pub accepted: u64,
    /// Candidates discarded because execution raised a VM error.
    pub discarded_error: u64,
    /// Candidates that ran fine but produced no new analysis fact.
    pub rejected_no_novelty: u64,
    /// Candidates the builder could not complete (no receiver available,
    /// length cap hit mid-construction).
    pub rejected_shape: u64,
    /// Candidates rejected for producing a pair-relevant fact outside the
    /// reference basis (bounded generation only).
    pub rejected_off_target: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Distinct analysis facts covered by the accepted suite.
    pub facts: u64,
}

/// The result of a generation run.
#[derive(Debug)]
pub struct GenOutcome {
    /// Accepted sequences rendered as HIR tests (`gen_000`, `gen_001`, …),
    /// ready to print or lower.
    pub tests: Vec<hir::Test>,
    /// Run counters (also mirrored into `gen.*` metrics).
    pub stats: GenStats,
}

/// One deduplicated analysis fact — the novelty currency. Mirrors exactly
/// what the Pair Generator and Context Deriver consume: per-method access
/// classifications (with protection status and lockset) and the `D`
/// summary edges (setters and returns).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Fact {
    Access {
        method: MethodId,
        path: Option<IPath>,
        leaf: PathField,
        is_write: bool,
        writeable: bool,
        unprotected: bool,
        in_ctor: bool,
        locks: Vec<Option<IPath>>,
    },
    Setter {
        method: MethodId,
        lhs: IPath,
        rhs: IPath,
        overwritten: bool,
    },
    Return {
        method: MethodId,
        ret: IPath,
        src: IPath,
    },
}

impl Fact {
    /// The root method a fact is attributed to.
    fn method(&self) -> MethodId {
        match self {
            Fact::Access { method, .. }
            | Fact::Setter { method, .. }
            | Fact::Return { method, .. } => *method,
        }
    }

    /// True for facts that influence the *potential racy pair set*:
    /// non-constructor access classifications. Constructor-internal
    /// accesses never pair, and `D` summary edges steer context
    /// derivation, not pairing — so neither bounds pair parity.
    fn bounds_pairs(&self) -> bool {
        matches!(self, Fact::Access { in_ctor: false, .. })
    }
}

/// The fact universe of a reference (hand-written) seed suite. When
/// generation is given a basis, the novelty oracle is *bounded* by it:
/// candidates must cover not-yet-seen basis facts and may not introduce
/// any pair-relevant fact outside the basis. At saturation the generated
/// suite's pair set therefore equals the reference suite's — the parity
/// target — instead of overshooting into states the reference never
/// reached (e.g. a coalescing queue's contains-scan on a non-empty
/// backing array that every hand-written test happens to avoid).
#[derive(Debug, Clone)]
pub struct FactBasis {
    facts: BTreeSet<Fact>,
}

impl FactBasis {
    /// Replays the program's own tests and records their fact universe.
    pub fn from_tests(prog: &Program, mir: &MirProgram) -> FactBasis {
        FactBasis::from_tests_on(prog, mir, Engine::TreeWalk)
    }

    /// [`FactBasis::from_tests`] on an explicit execution engine.
    pub fn from_tests_on(prog: &Program, mir: &MirProgram, engine: Engine) -> FactBasis {
        let mut sink = VecSink::new();
        let mut machine = Machine::new(
            prog,
            mir,
            MachineOptions {
                engine,
                ..MachineOptions::default()
            },
        );
        for t in &prog.tests {
            let _ = machine.run_test(t.id, &mut sink);
        }
        FactBasis {
            facts: facts(&analyze(prog, &sink.events)),
        }
    }

    /// Number of facts in the basis.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// Projects an analysis onto its deduplicated fact set.
fn facts(analysis: &Analysis) -> BTreeSet<Fact> {
    let mut set = BTreeSet::new();
    for a in &analysis.accesses {
        let mut locks: Vec<Option<IPath>> = a.locks.iter().map(|l| l.path.clone()).collect();
        locks.sort();
        set.insert(Fact::Access {
            method: a.method,
            path: a.path.clone(),
            leaf: a.leaf,
            is_write: a.is_write,
            writeable: a.writeable,
            unprotected: a.unprotected,
            in_ctor: a.in_ctor,
            locks,
        });
    }
    for s in &analysis.setters {
        set.insert(Fact::Setter {
            method: s.method,
            lhs: s.lhs.clone(),
            rhs: s.rhs.clone(),
            overwritten: s.overwritten,
        });
    }
    for r in &analysis.returns {
        set.insert(Fact::Return {
            method: r.method,
            ret: r.ret_path.clone(),
            src: r.src.clone(),
        });
    }
    set
}

/// Generates a sequential seed suite for `prog`, choosing the API surface
/// automatically: observed bindings when the program ships tests,
/// otherwise the liberal HIR-derived surface.
pub fn generate_suite(
    prog: &Program,
    mir: &MirProgram,
    opts: &GenOptions,
    obs: &Obs,
) -> GenOutcome {
    if prog.tests.is_empty() {
        let api = ApiSurface::for_program(prog);
        generate(prog, mir, &api, None, opts, obs)
    } else {
        let api = ApiSurface::from_tests_on(prog, mir, opts.engine);
        let basis = FactBasis::from_tests_on(prog, mir, opts.engine);
        generate(prog, mir, &api, Some(&basis), opts, obs)
    }
}

/// Runs the feedback-directed loop over an explicit [`ApiSurface`],
/// optionally bounded by a reference [`FactBasis`] (see its docs).
pub fn generate(
    prog: &Program,
    mir: &MirProgram,
    api: &ApiSurface,
    basis: Option<&FactBasis>,
    opts: &GenOptions,
    obs: &Obs,
) -> GenOutcome {
    let start = Instant::now();
    let gen_span = span!(
        obs.tracer,
        "gen.generate",
        budget = opts.budget,
        seed = opts.seed
    );
    let gen_span_id = gen_span.id();

    // The pool is the *state library*: every distinct error-free,
    // on-target sequence, whether or not it was novel. Novelty governs
    // which sequences are **emitted** as tests, not which are reusable —
    // deep states (a buffer filled to capacity, a populated argument
    // collection) are built from prefixes that produce nothing new
    // themselves, so rejecting them from the pool would make those
    // states unreachable (Randoop keeps its component set the same way).
    let mut pool: Vec<GenSequence> = Vec::new();
    let mut pool_keys: BTreeSet<String> = BTreeSet::new();
    let mut emitted: Vec<GenSequence> = Vec::new();
    let mut seen: BTreeSet<Fact> = BTreeSet::new();
    let mut covered: BTreeSet<MethodId> = BTreeSet::new();
    let mut stats = GenStats::default();

    let per_round = opts.round.max(1);
    let rounds = if api.calls.is_empty() {
        0
    } else {
        opts.budget.div_ceil(per_round)
    };

    for round in 0..rounds {
        let round_span = obs.tracer.span_under("gen.round", gen_span_id);
        drop(round_span);
        let quota = per_round.min(opts.budget - round * per_round);
        stats.candidates += quota as u64;

        // Specs still owning unreached coverage, recomputed per round:
        // with a basis, a method stays hot until every basis fact rooted
        // in it is seen (reaching deep states like "argument container
        // non-empty" needs many attempts on the same method); without
        // one, until some accepted test has called it.
        let hot: Vec<usize> = api
            .calls
            .iter()
            .enumerate()
            .filter(|(_, c)| match basis {
                Some(b) => b
                    .facts
                    .iter()
                    .any(|f| f.method() == c.method && !seen.contains(f)),
                None => !covered.contains(&c.method),
            })
            .map(|(i, _)| i)
            .collect();

        // Phase 1 (sequential): build candidates from the round-start pool
        // snapshot, each under its own derived rng.
        let built: Vec<(usize, GenSequence)> = (0..quota)
            .filter_map(|slot| {
                let mut rng = SplitMix64::seed_from_u64(derive_seed(
                    opts.seed,
                    &[STAGE_GEN_BUILD, round as u64, slot as u64],
                ));
                build_candidate(&mut rng, prog, api, &pool, &emitted, &hot, opts)
                    .map(|seq| (slot, seq))
            })
            .collect();
        stats.rejected_shape += (quota - built.len()) as u64;
        if built.is_empty() {
            continue;
        }

        // Phase 2 (parallel): execute candidates as this round's test
        // suite, sharded over fixed slot chunks; one machine per chunk,
        // reset to the per-slot seed before each run.
        let mut round_prog = prog.clone();
        round_prog.tests = built
            .iter()
            .enumerate()
            .map(|(i, (_, seq))| seq.to_test(TestId(i as u32), format!("cand_{i}")))
            .collect();
        let mut round_mir = mir.clone();
        round_mir.tests = round_prog
            .tests
            .iter()
            .map(|t| lower_test(&round_prog, t))
            .collect();

        let chunk_starts: Vec<usize> = (0..built.len()).step_by(CHUNK).collect();
        let results: Vec<Vec<Result<BTreeSet<Fact>, ()>>> =
            parallel_map(opts.threads, &chunk_starts, |_, &lo| {
                let mut exec_span = obs.tracer.span_under("gen.exec", gen_span_id);
                exec_span.attr("round", &round);
                exec_span.attr("chunk", &lo);
                let hi = (lo + CHUNK).min(built.len());
                let mut machine = Machine::new(
                    &round_prog,
                    &round_mir,
                    MachineOptions {
                        max_steps: CAND_STEP_BUDGET,
                        engine: opts.engine,
                        ..MachineOptions::default()
                    },
                );
                (lo..hi)
                    .map(|i| {
                        let slot = built[i].0 as u64;
                        machine.reset(derive_seed(
                            opts.seed,
                            &[STAGE_GEN_MACHINE, round as u64, slot],
                        ));
                        let mut sink = VecSink::new();
                        match machine.run_test(TestId(i as u32), &mut sink) {
                            Err(_) => Err(()),
                            Ok(()) => Ok(facts(&analyze(&round_prog, &sink.events))),
                        }
                    })
                    .collect()
            });

        // Phase 3 (sequential): merge in slot order against the shared
        // novelty set.
        for (i, res) in results.into_iter().flatten().enumerate() {
            match res {
                Err(()) => stats.discarded_error += 1,
                Ok(candidate_facts) => {
                    let off_target = basis.is_some_and(|b| {
                        candidate_facts
                            .iter()
                            .any(|f| f.bounds_pairs() && !b.facts.contains(f))
                    });
                    if off_target {
                        stats.rejected_off_target += 1;
                        continue;
                    }
                    let novel = match basis {
                        None => candidate_facts.difference(&seen).count(),
                        // Bounded: only basis facts count as progress.
                        Some(b) => candidate_facts
                            .iter()
                            .filter(|f| b.facts.contains(f) && !seen.contains(f))
                            .count(),
                    };
                    let seq = &built[i].1;
                    if pool_keys.insert(format!("{:?}", seq.steps)) {
                        pool.push(seq.clone());
                    }
                    if novel == 0 {
                        stats.rejected_no_novelty += 1;
                    } else {
                        stats.facts += novel as u64;
                        seen.extend(candidate_facts);
                        covered.extend(seq.called_methods());
                        emitted.push(seq.clone());
                        stats.accepted += 1;
                    }
                }
            }
        }
    }
    stats.rounds = rounds as u64;

    let m = &obs.metrics;
    m.counter("gen.candidates").add(stats.candidates);
    m.counter("gen.accepted").add(stats.accepted);
    m.counter("gen.discarded_error").add(stats.discarded_error);
    m.counter("gen.rejected_no_novelty")
        .add(stats.rejected_no_novelty);
    m.counter("gen.rejected_shape").add(stats.rejected_shape);
    m.counter("gen.rejected_off_target")
        .add(stats.rejected_off_target);
    m.counter("gen.rounds").add(stats.rounds);
    m.counter("gen.facts").add(stats.facts);
    m.gauge("stage.gen.wall_ns").set_duration(start.elapsed());
    drop(gen_span);

    let tests = emitted
        .iter()
        .enumerate()
        .map(|(i, seq)| seq.to_test(TestId(i as u32), format!("gen_{i:03}")))
        .collect();
    GenOutcome { tests, stats }
}

/// Uniform pick from `0..n` (`n > 0`).
fn pick(rng: &mut SplitMix64, n: usize) -> usize {
    rng.gen_range(0..n)
}

/// Builds one candidate: a pooled state (or a fresh start) plus up to two
/// uniformly-chosen *filler* calls and one final call biased toward `hot`
/// specs (those still owning unreached coverage). The final spec is chosen
/// first so the starting state can be picked compatible with it; fillers
/// are free state-building — novelty judges the whole sequence, so a
/// count-filling write or a container-populating add costs nothing even
/// when it adds no new facts itself. Returns `None` when the builder
/// cannot satisfy the final call's bindings within the length cap.
fn build_candidate(
    rng: &mut SplitMix64,
    prog: &Program,
    api: &ApiSurface,
    pool: &[GenSequence],
    emitted: &[GenSequence],
    hot: &[usize],
    opts: &GenOptions,
) -> Option<GenSequence> {
    let spec: &CallSpec = if !hot.is_empty() && rng.gen_bool(0.8) {
        &api.calls[hot[pick(rng, hot.len())]]
    } else {
        &api.calls[pick(rng, api.calls.len())]
    };

    // Emitted sequences are the coverage frontier — states that produced
    // novel facts are the best launch points for reaching the remaining
    // ones (the same reason fuzzers mutate their coverage corpus). The
    // full pool keeps diversity, but it dilutes as it grows, so try the
    // frontier first.
    let mut seq = match start_state(rng, emitted, spec, opts, 0.5) {
        s if s.is_empty() => start_state(rng, pool, spec, opts, 0.7),
        s => s,
    };

    let extra = match pick(rng, 10) {
        0..=4 => 0,
        5..=7 => 1,
        _ => 2,
    };
    for _ in 0..extra {
        if seq.len() + 2 > opts.max_len {
            break;
        }
        let filler = &api.calls[pick(rng, api.calls.len())];
        // A filler that cannot be bound is skipped, not fatal.
        let _ = push_call(rng, &mut seq, prog, api, filler, opts);
    }

    push_call(rng, &mut seq, prog, api, spec, opts)?;
    Some(seq)
}

/// The starting state for a new candidate: usually a pooled sequence that
/// already holds a receiver for `spec` (so hot methods are retried against
/// accumulated deep states), sometimes a fresh empty sequence.
fn start_state(
    rng: &mut SplitMix64,
    pool: &[GenSequence],
    spec: &CallSpec,
    opts: &GenOptions,
    p_reuse: f64,
) -> GenSequence {
    if pool.is_empty() || !rng.gen_bool(p_reuse) {
        return GenSequence::default();
    }
    let compat: Vec<usize> = pool
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.len() < opts.max_len
                && (spec.recv_classes.is_empty() || !s.objects_of(&spec.recv_classes).is_empty())
        })
        .map(|(i, _)| i)
        .collect();
    if compat.is_empty() {
        GenSequence::default()
    } else {
        pool[compat[pick(rng, compat.len())]].clone()
    }
}

/// Appends one bound call of `spec` to `seq` (receiver, arguments, then
/// the call step). Transactional: on failure the sequence is rolled back
/// to its previous length, so partial construction steps never leak.
fn push_call(
    rng: &mut SplitMix64,
    seq: &mut GenSequence,
    prog: &Program,
    api: &ApiSurface,
    spec: &CallSpec,
    opts: &GenOptions,
) -> Option<()> {
    let mark = seq.len();
    match try_push_call(rng, seq, prog, api, spec, opts) {
        Some(()) => Some(()),
        None => {
            seq.steps.truncate(mark);
            None
        }
    }
}

fn try_push_call(
    rng: &mut SplitMix64,
    seq: &mut GenSequence,
    prog: &Program,
    api: &ApiSurface,
    spec: &CallSpec,
    opts: &GenOptions,
) -> Option<()> {
    let meth = prog.method(spec.method);
    let recv = if meth.is_static {
        None
    } else {
        Some(pick_object(
            rng,
            seq,
            prog,
            api,
            &spec.recv_classes,
            None,
            0,
            opts,
        )?)
    };

    let mut args = Vec::new();
    for (i, ty) in meth.param_tys().iter().enumerate() {
        let allowed = spec.param_classes.get(i).map(Vec::as_slice).unwrap_or(&[]);
        args.push(pick_arg(rng, seq, prog, api, ty, allowed, recv, 0, opts)?);
    }

    if seq.len() + 1 > opts.max_len {
        return None;
    }
    let kind = match recv {
        Some(recv) => StepKind::Call {
            recv,
            method: spec.method,
            args,
        },
        None => StepKind::Static {
            method: spec.method,
            args,
        },
    };
    seq.steps.push(Step {
        kind,
        result: meth.ret.clone(),
        concrete: None,
    });
    Some(())
}

/// Picks (or constructs) a pooled object whose concrete class is in
/// `allowed`, excluding step `exclude` — the receiver of the call under
/// construction must not also flow in as an argument, since receiver/
/// argument aliasing changes the access paths the analyzer reports and
/// would grow the fact space past the manual suites' pair universe.
#[allow(clippy::too_many_arguments)]
fn pick_object(
    rng: &mut SplitMix64,
    seq: &mut GenSequence,
    prog: &Program,
    api: &ApiSurface,
    allowed: &[ClassId],
    exclude: Option<usize>,
    depth: usize,
    opts: &GenOptions,
) -> Option<usize> {
    let mut existing = seq.objects_of(allowed);
    if let Some(x) = exclude {
        existing.retain(|&s| s != x);
    }
    if !existing.is_empty() && rng.gen_bool(0.8) {
        // Prefer *touched* objects — ones some call already received —
        // since populated states (a non-empty argument collection, an
        // out-of-order index) unlock facts that fresh instances cannot.
        let touched: Vec<usize> = existing
            .iter()
            .copied()
            .filter(|&obj| {
                seq.steps
                    .iter()
                    .any(|st| matches!(st.kind, StepKind::Call { recv, .. } if recv == obj))
            })
            .collect();
        if !touched.is_empty() && rng.gen_bool(0.7) {
            return Some(touched[pick(rng, touched.len())]);
        }
        return Some(existing[pick(rng, existing.len())]);
    }
    if allowed.is_empty() {
        return existing.first().copied();
    }
    let class = allowed[pick(rng, allowed.len())];
    construct(rng, seq, prog, api, class, depth, opts).or_else(|| existing.first().copied())
}

/// Appends the steps to construct a fresh instance of `class`; returns the
/// step index of the new object.
fn construct(
    rng: &mut SplitMix64,
    seq: &mut GenSequence,
    prog: &Program,
    api: &ApiSurface,
    class: ClassId,
    depth: usize,
    opts: &GenOptions,
) -> Option<usize> {
    if depth > 2 {
        return None;
    }
    let spec = api.ctor(class)?;
    let mut args = Vec::new();
    if let Some(ctor) = spec.ctor {
        for (i, ty) in prog.method(ctor).param_tys().iter().enumerate() {
            let allowed = spec.param_classes.get(i).map(Vec::as_slice).unwrap_or(&[]);
            args.push(pick_arg(
                rng,
                seq,
                prog,
                api,
                ty,
                allowed,
                None,
                depth + 1,
                opts,
            )?);
        }
    }
    if seq.len() + 1 > opts.max_len {
        return None;
    }
    seq.steps.push(Step {
        kind: StepKind::New {
            class,
            ctor: spec.ctor,
            args,
        },
        result: Ty::Class(class),
        concrete: Some(class),
    });
    Some(seq.len() - 1)
}

/// Picks one argument for a parameter of type `ty`: palette literals for
/// scalars, pooled or freshly built arrays for `int[]`, pooled or freshly
/// constructed objects (restricted to `allowed`) for references.
#[allow(clippy::too_many_arguments)]
fn pick_arg(
    rng: &mut SplitMix64,
    seq: &mut GenSequence,
    prog: &Program,
    api: &ApiSurface,
    ty: &Ty,
    allowed: &[ClassId],
    exclude: Option<usize>,
    depth: usize,
    opts: &GenOptions,
) -> Option<Arg> {
    match ty {
        Ty::Int => Some(Arg::Int(api.ints[pick(rng, api.ints.len())])),
        Ty::Bool => Some(Arg::Bool(rng.gen_bool(0.5))),
        Ty::Array(elem) if **elem == Ty::Int => {
            let arrays = seq.int_arrays();
            if !arrays.is_empty() && rng.gen_bool(0.5) {
                return Some(Arg::Ref(arrays[pick(rng, arrays.len())]));
            }
            if seq.len() + 1 > opts.max_len {
                return arrays.first().map(|&a| Arg::Ref(a));
            }
            let len = api.array_lens[pick(rng, api.array_lens.len())];
            let fill = (0..len)
                .map(|_| api.ints[pick(rng, api.ints.len())])
                .collect();
            seq.steps.push(Step {
                kind: StepKind::NewIntArray { len, fill },
                result: Ty::Array(Box::new(Ty::Int)),
                concrete: None,
            });
            Some(Arg::Ref(seq.len() - 1))
        }
        Ty::Class(_) => {
            pick_object(rng, seq, prog, api, allowed, exclude, depth, opts).map(Arg::Ref)
        }
        _ => None,
    }
}
