//! Straight-line call sequences and their conversion to MJ tests.
//!
//! A [`GenSequence`] is the generator's working representation: a list of
//! [`Step`]s, each producing at most one value bound to local `v<i>`.
//! Reference-typed steps whose *concrete* class is statically known (`new
//! C(…)`, `new int[n]`) form the object pool later steps may draw
//! receivers and arguments from — the same role Algorithm 1's object
//! collection plays for the synthesizer. Call results are bound to locals
//! for readability but never pooled: their concrete class depends on
//! dispatch, and the parity argument needs every binding's class known at
//! generation time.

use narada_lang::hir::{self, ClassId, Expr, LocalId, MethodId, Place, Stmt, TestId, Ty};
use narada_lang::span::Span;

/// An argument slot in a [`StepKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A reference to the value produced by an earlier step (by index).
    Ref(usize),
}

/// One statement of a generated sequence.
#[derive(Debug, Clone)]
pub enum StepKind {
    /// `var v<i> = new C(args);`
    New {
        /// Allocated class.
        class: ClassId,
        /// Constructor resolved via [`hir::Program::ctor_for`].
        ctor: Option<MethodId>,
        /// Constructor arguments.
        args: Vec<Arg>,
    },
    /// `var v<i> = new int[len];` followed by element stores.
    NewIntArray {
        /// Array length.
        len: usize,
        /// Values stored into `v<i>[0..fill.len()]`.
        fill: Vec<i64>,
    },
    /// `v<recv>.m(args);` (bound to a local when `m` returns a value).
    Call {
        /// Step index of the receiver.
        recv: usize,
        /// Statically resolved target method.
        method: MethodId,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// `C.m(args);` static call.
    Static {
        /// The target method.
        method: MethodId,
        /// Arguments.
        args: Vec<Arg>,
    },
}

/// One step: its kind, result type, and — for pooled objects — the
/// statically known concrete class.
#[derive(Debug, Clone)]
pub struct Step {
    /// What the step does.
    pub kind: StepKind,
    /// The type of the produced value (`Ty::Void` for void calls).
    pub result: Ty,
    /// `Some(class)` only for `New` steps; marks the step as poolable.
    pub concrete: Option<ClassId>,
}

/// A straight-line sequence of generated steps.
#[derive(Debug, Clone, Default)]
pub struct GenSequence {
    /// The steps, in execution order.
    pub steps: Vec<Step>,
}

impl GenSequence {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Indices of pooled objects whose concrete class is in `allowed`.
    pub fn objects_of(&self, allowed: &[ClassId]) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.concrete.is_some_and(|c| allowed.contains(&c)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of `int[]` arrays built by this sequence.
    pub fn int_arrays(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, StepKind::NewIntArray { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// The methods invoked by `Call`/`Static` steps, in order.
    pub fn called_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.steps.iter().filter_map(|s| match s.kind {
            StepKind::Call { method, .. } | StepKind::Static { method, .. } => Some(method),
            _ => None,
        })
    }

    /// Renders the sequence as a printable HIR test named `name`. Each
    /// value-producing step gets a `var v<i> = …;` binding; void calls
    /// become expression statements; arrays are built with `new int[n]`
    /// plus element stores so the printed program round-trips through the
    /// parser unchanged.
    pub fn to_test(&self, id: TestId, name: String) -> hir::Test {
        let sp = Span::DUMMY;
        let mut locals: Vec<hir::Local> = Vec::new();
        let mut slot: Vec<Option<LocalId>> = vec![None; self.steps.len()];
        let mut stmts: Vec<Stmt> = Vec::new();

        let arg_expr = |slot: &[Option<LocalId>], a: &Arg| -> Expr {
            match a {
                Arg::Int(v) => Expr::Int(*v, sp),
                Arg::Bool(b) => Expr::Bool(*b, sp),
                Arg::Ref(s) => Expr::Local(slot[*s].expect("ref to value-producing step"), sp),
            }
        };

        for (i, step) in self.steps.iter().enumerate() {
            let mut bind = |ty: Ty| -> LocalId {
                let lid = LocalId(locals.len() as u32);
                locals.push(hir::Local {
                    name: format!("v{i}"),
                    ty,
                });
                lid
            };
            match &step.kind {
                StepKind::New { class, ctor, args } => {
                    let lid = bind(Ty::Class(*class));
                    slot[i] = Some(lid);
                    stmts.push(Stmt::Let {
                        local: lid,
                        init: Expr::New {
                            class: *class,
                            args: args.iter().map(|a| arg_expr(&slot, a)).collect(),
                            ctor: *ctor,
                            span: sp,
                        },
                        span: sp,
                    });
                }
                StepKind::NewIntArray { len, fill } => {
                    let lid = bind(Ty::Array(Box::new(Ty::Int)));
                    slot[i] = Some(lid);
                    stmts.push(Stmt::Let {
                        local: lid,
                        init: Expr::NewArray {
                            elem: Ty::Int,
                            len: Box::new(Expr::Int(*len as i64, sp)),
                            span: sp,
                        },
                        span: sp,
                    });
                    for (j, v) in fill.iter().enumerate() {
                        stmts.push(Stmt::Assign {
                            place: Place::Index {
                                arr: Expr::Local(lid, sp),
                                idx: Expr::Int(j as i64, sp),
                            },
                            value: Expr::Int(*v, sp),
                            span: sp,
                        });
                    }
                }
                StepKind::Call { recv, method, args } => {
                    let call = Expr::Call {
                        recv: Box::new(Expr::Local(
                            slot[*recv].expect("receiver is a pooled object"),
                            sp,
                        )),
                        method: *method,
                        args: args.iter().map(|a| arg_expr(&slot, a)).collect(),
                        span: sp,
                    };
                    if step.result == Ty::Void {
                        stmts.push(Stmt::Expr(call));
                    } else {
                        let lid = bind(step.result.clone());
                        slot[i] = Some(lid);
                        stmts.push(Stmt::Let {
                            local: lid,
                            init: call,
                            span: sp,
                        });
                    }
                }
                StepKind::Static { method, args } => {
                    let call = Expr::StaticCall {
                        method: *method,
                        args: args.iter().map(|a| arg_expr(&slot, a)).collect(),
                        span: sp,
                    };
                    if step.result == Ty::Void {
                        stmts.push(Stmt::Expr(call));
                    } else {
                        let lid = bind(step.result.clone());
                        slot[i] = Some(lid);
                        stmts.push(Stmt::Let {
                            local: lid,
                            init: call,
                            span: sp,
                        });
                    }
                }
            }
        }

        hir::Test {
            id,
            name,
            locals,
            body: hir::Block { stmts },
            span: sp,
        }
    }
}
