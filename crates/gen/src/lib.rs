//! # narada-gen — feedback-directed seed-test generation
//!
//! Narada's pipeline consumes a *sequential* seed test-suite; this crate
//! removes the last manual input by synthesizing that suite directly from
//! a library's API, in the style of Randoop's feedback-directed random
//! testing (and ConCovUp's use of generated drivers as concurrency-test
//! front-ends):
//!
//! 1. [`ApiSurface`] enumerates what may be called — either *observed*
//!    from an existing suite ([`ApiSurface::from_tests`]) or derived
//!    liberally from the typechecked HIR ([`ApiSurface::for_program`]);
//! 2. [`engine::generate`] grows straight-line call sequences by executing
//!    candidate one-call extensions on the VM, pooling legal object
//!    instances (Algorithm 1's object collection) and discarding
//!    error-throwing prefixes;
//! 3. a candidate is *kept* only when the Access Analyzer reports a new
//!    access classification or `D` summary edge over all previously
//!    accepted tests — the novelty oracle is exactly the fact space the
//!    Pair Generator consumes downstream.
//!
//! Generation is deterministic: all randomness derives from the user seed
//! per `(round, slot)` job identity, and candidate execution is sharded
//! through `narada-core`'s order-preserving `parallel_map`, so the
//! emitted suite is byte-identical at any thread count.
//!
//! ## Example
//!
//! ```
//! use narada_gen::{generate_suite, GenOptions};
//! use narada_obs::Obs;
//!
//! let prog = narada_lang::compile(r#"
//!     class Counter {
//!         int count;
//!         void inc() { this.count = this.count + 1; }
//!         int get() { return this.count; }
//!     }
//!     test seed { var c = new Counter(); c.inc(); var n = c.get(); }
//! "#)?;
//! let mir = narada_lang::lower::lower_program(&prog);
//! let opts = GenOptions { budget: 64, ..GenOptions::default() };
//! let out = generate_suite(&prog, &mir, &opts, &Obs::new());
//! assert!(!out.tests.is_empty(), "both methods are reachable");
//! # Ok::<(), narada_lang::Diagnostics>(())
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod engine;
pub mod sequence;

pub use api::{ApiSurface, CallSpec, CtorSpec};
pub use engine::{generate, generate_suite, FactBasis, GenOptions, GenOutcome, GenStats};
pub use sequence::{Arg, GenSequence, Step, StepKind};
