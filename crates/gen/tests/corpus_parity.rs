//! End-to-end acceptance for `narada-gen` over the paper corpus: with the
//! manual seed suites *disabled*, the generated suites must drive the
//! synthesis pipeline to the **same potential racy pair set** as the
//! hand-written suites they replace (modulo ordering), the printed suite
//! must be byte-identical at any thread count, and at least one generated
//! run must confirm a real race on C1 and C5 through the existing
//! detector stack.

use narada_core::{synthesize, SynthesisOptions, SynthesisOutput};
use narada_gen::{generate, ApiSurface, FactBasis, GenOptions};
use narada_lang::hir::Program;
use narada_lang::mir::MirProgram;
use narada_obs::Obs;
use std::collections::BTreeSet;

/// Fixed generation seed for the whole file: the suite is deterministic,
/// so one witness seed is a reproducible proof, not a flaky sample.
const SEED: u64 = 7;

/// Per-class candidate budgets: the smallest power-of-two budget at which
/// the bounded-novelty search saturates the manual fact basis (plus one
/// notch of headroom). Listed per class because state-heavy APIs (C4's
/// DynamicBin1D, C5's parallel-array index) need deeper exploration.
fn budget_for(id: &str) -> usize {
    match id {
        "C4" => 16384,
        "C5" => 4096,
        _ => 2048,
    }
}

fn opts_for(id: &str, threads: usize) -> GenOptions {
    GenOptions {
        budget: budget_for(id),
        seed: SEED,
        threads,
        ..GenOptions::default()
    }
}

/// Generates a replacement suite for `entry` and returns it as printable
/// MJ source (library + generated tests), exactly what `narada gen` emits.
fn generated_source(entry: &narada_corpus::CorpusEntry, threads: usize) -> String {
    let prog = entry.compile().expect("corpus entry compiles");
    let mir = narada_lang::lower::lower_program(&prog);
    let api = ApiSurface::from_tests(&prog, &mir);
    let basis = FactBasis::from_tests(&prog, &mir);
    let out = generate(
        &prog,
        &mir,
        &api,
        Some(&basis),
        &opts_for(entry.id, threads),
        &Obs::new(),
    );
    let mut gen_prog = prog.clone();
    gen_prog.tests = out.tests;
    narada_lang::pretty::program(&gen_prog)
}

/// Normalizes a pair set to id-independent strings so suites from two
/// *different* compilations (manual vs reparsed generated) compare:
/// unordered pair of `(qualified method, path, leaf, R/W)` descriptors.
fn pair_fingerprints(prog: &Program, out: &SynthesisOutput) -> BTreeSet<(String, String)> {
    let describe = |idx: usize| -> String {
        let r = &out.pairs.accesses[idx];
        let path = match &r.path {
            Some(p) => p.display(prog).to_string(),
            None => "-".to_string(),
        };
        let leaf = match r.leaf.field() {
            Some(f) => prog.qualified_field(f),
            None => "[*]".to_string(),
        };
        format!(
            "{} {path} {leaf} {}",
            prog.qualified_name(r.method),
            if r.is_write { "W" } else { "R" }
        )
    };
    out.pairs
        .pairs
        .iter()
        .map(|p| {
            let (a, b) = (describe(p.a1), describe(p.a2));
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect()
}

fn pipeline(prog: &Program, mir: &MirProgram) -> SynthesisOutput {
    synthesize(prog, mir, &SynthesisOptions::default())
}

/// The tentpole acceptance: for every corpus class, replacing the manual
/// seed suite with the generated one leaves the potential racy pair set
/// unchanged (same fingerprint set, ordering ignored).
#[test]
fn generated_suites_reach_pair_parity() {
    let mut failures = Vec::new();
    for entry in narada_corpus::all() {
        let manual_prog = entry.compile().expect("corpus entry compiles");
        let manual_mir = narada_lang::lower::lower_program(&manual_prog);
        let manual = pair_fingerprints(&manual_prog, &pipeline(&manual_prog, &manual_mir));

        // Reparse the printed suite: parity must hold for the *emitted
        // text*, proving `narada gen` output is a drop-in seed suite.
        // Threads 0 = auto: output is thread-invariant (proven below).
        let src = generated_source(&entry, 0);
        let gen_prog = narada_lang::compile(&src).expect("generated suite recompiles");
        let gen_mir = narada_lang::lower::lower_program(&gen_prog);
        let generated = pair_fingerprints(&gen_prog, &pipeline(&gen_prog, &gen_mir));

        if manual != generated {
            let missing: Vec<_> = manual.difference(&generated).take(5).collect();
            let extra: Vec<_> = generated.difference(&manual).take(5).collect();
            failures.push(format!(
                "{}: generated {} pairs vs manual {} ({} missing, {} extra)\n  missing: {:#?}\n  extra: {:#?}",
                entry.id,
                generated.len(),
                manual.len(),
                manual.difference(&generated).count(),
                generated.difference(&manual).count(),
                missing,
                extra
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "pair-set parity failed:\n{}",
        failures.join("\n")
    );
}

/// Determinism acceptance: the printed generated suite is byte-identical
/// at `--threads 1`, `2`, and `8`.
#[test]
fn generated_output_is_thread_invariant() {
    for id in ["C1", "C3"] {
        let entry = narada_corpus::by_id(id).expect("corpus id");
        let one = generated_source(&entry, 1);
        let two = generated_source(&entry, 2);
        let eight = generated_source(&entry, 8);
        assert_eq!(one, two, "{id}: threads 1 vs 2 output differs");
        assert_eq!(one, eight, "{id}: threads 1 vs 8 output differs");
    }
}

/// Race-confirmation acceptance: at least one test synthesized from the
/// *generated* seed suite reproduces a race on C1 and C5 through the
/// existing detector (schedule exploration + RaceFuzzer confirmation).
#[test]
fn generated_seeds_confirm_races_on_c1_and_c5() {
    for id in ["C1", "C5"] {
        let entry = narada_corpus::by_id(id).expect("corpus id");
        let src = generated_source(&entry, 0);
        let prog = narada_lang::compile(&src).expect("generated suite recompiles");
        let mir = narada_lang::lower::lower_program(&prog);
        let out = pipeline(&prog, &mir);
        assert!(out.test_count() > 0, "{id}: no synthesized tests");

        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
        let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
        let cfg = narada_detect::DetectConfig::default();
        let report = narada_detect::evaluate_suite(&prog, &mir, &seeds, &plans, &cfg);
        assert!(
            report.harmful + report.benign > 0,
            "{id}: no race reproduced from generated seeds ({} detected)",
            report.races_detected
        );
    }
}
