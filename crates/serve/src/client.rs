//! Client side of the wire protocol: one blocking request/response (or
//! request/stream) per call, used by the `narada submit` / `jobs` /
//! `fetch` / `shutdown` subcommands and by the acceptance tests.

use crate::proto::{read_frame, write_frame, JobOptions};
use narada_obs::Json;
use std::io::BufReader;
use std::net::TcpStream;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// One request, one response frame.
    fn call(&mut self, req: &Json) -> Result<Json, String> {
        write_frame(&mut self.writer, req).map_err(|e| format!("send: {e}"))?;
        match read_frame(&mut self.reader).map_err(|e| format!("recv: {e}"))? {
            Some(resp) => Ok(resp),
            None => Err("server closed the connection".into()),
        }
    }

    /// Checks a response's `ok` field, surfacing the server's error.
    fn checked(resp: Json) -> Result<Json, String> {
        match resp.get("ok") {
            Some(Json::Bool(true)) => Ok(resp),
            _ => Err(resp
                .get("error")
                .and_then(|e| e.as_str())
                .unwrap_or("server error")
                .to_string()),
        }
    }

    /// `ping` — liveness probe.
    pub fn ping(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj().with("cmd", Json::Str("ping".into())))?;
        Self::checked(resp)
    }

    /// `submit` — enqueue a job; returns its id.
    pub fn submit(&mut self, source: &str, options: &JobOptions) -> Result<u64, String> {
        let req = Json::obj()
            .with("cmd", Json::Str("submit".into()))
            .with("source", Json::Str(source.to_string()))
            .with("options", options.to_json());
        let resp = Self::checked(self.call(&req)?)?;
        resp.get("job")
            .and_then(|j| j.as_i64())
            .map(|j| j as u64)
            .ok_or_else(|| "submit response missing `job`".into())
    }

    /// `jobs` — the job table.
    pub fn jobs(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj().with("cmd", Json::Str("jobs".into())))?;
        Self::checked(resp)
    }

    /// `stats` — cache counters, sizes, capacities, uptime.
    pub fn stats(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj().with("cmd", Json::Str("stats".into())))?;
        Self::checked(resp)
    }

    /// `health` — one readiness frame: queue depth, in-flight jobs, cache
    /// occupancy per family, worker heartbeats, slow-job flags.
    pub fn health(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj().with("cmd", Json::Str("health".into())))?;
        Self::checked(resp)
    }

    /// `watch` — streams status frames every `interval_ms` until `count`
    /// frames arrived (0 = unbounded) or `on_frame` returns `false`.
    /// Returns the last frame seen.
    pub fn watch(
        &mut self,
        interval_ms: u64,
        count: u64,
        on_frame: &mut dyn FnMut(&Json) -> bool,
    ) -> Result<Json, String> {
        let req = Json::obj()
            .with("cmd", Json::Str("watch".into()))
            .with("interval_ms", Json::Int(interval_ms as i64))
            .with("count", Json::Int(count as i64));
        write_frame(&mut self.writer, &req).map_err(|e| format!("send: {e}"))?;
        let mut seen = 0u64;
        loop {
            let frame = read_frame(&mut self.reader)
                .map_err(|e| format!("recv: {e}"))?
                .ok_or("server closed the connection")?;
            let frame = Self::checked(frame)?;
            seen += 1;
            let more = on_frame(&frame);
            if !more || (count != 0 && seen >= count) {
                return Ok(frame);
            }
        }
    }

    /// `fetch` — a job's current state (`wait: false`) or its streamed
    /// completion (`wait: true`); `on_event` sees each progress frame.
    pub fn fetch(
        &mut self,
        job: u64,
        wait: bool,
        on_event: &mut dyn FnMut(&Json),
    ) -> Result<Json, String> {
        let req = Json::obj()
            .with("cmd", Json::Str("fetch".into()))
            .with("job", Json::Int(job as i64))
            .with("wait", Json::Bool(wait));
        write_frame(&mut self.writer, &req).map_err(|e| format!("send: {e}"))?;
        loop {
            let frame = read_frame(&mut self.reader)
                .map_err(|e| format!("recv: {e}"))?
                .ok_or("server closed the connection")?;
            if frame.get("event").is_some() {
                on_event(&frame);
                continue;
            }
            return Self::checked(frame);
        }
    }

    /// `shutdown` — drain and stop the server; returns its final
    /// response (completed/failed counts).
    pub fn shutdown(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj().with("cmd", Json::Str("shutdown".into())))?;
        Self::checked(resp)
    }
}

/// Waits (bounded) until a server accepts connections — for scripts and
/// tests that just started one.
pub fn wait_ready(addr: &str, timeout: std::time::Duration) -> Result<(), String> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match Client::connect(addr).and_then(|mut c| c.ping()) {
            Ok(_) => return Ok(()),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(format!("server at {addr} not ready: {e}"));
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }
}
