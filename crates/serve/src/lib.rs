//! # narada-serve — race detection as a persistent service
//!
//! The batch CLI pays the full compile-and-analyze cost on every
//! invocation. This crate keeps a daemon resident instead: clients
//! submit `{library source, options}` jobs over a line-delimited JSON
//! TCP protocol (`narada submit` / `jobs` / `fetch`), a worker pool runs
//! the full pipeline — synthesis, schedule exploration, replay
//! confirmation — and a **content-addressed artifact cache** makes
//! repeat submissions incremental: parsed+lowered programs, per-class
//! MIR bodies, compiled bytecode, screener fixpoints, and generation
//! surfaces are all keyed by FNV-1a digests ([`cache`]), so editing one
//! method re-derives only its dirty cone.
//!
//! Two invariants the test suite enforces:
//!
//! * **byte-identity** — a served verdict report equals the batch
//!   `narada detect --report-out` document byte-for-byte, cold or warm,
//!   at any server worker count ([`run::render_report`] is the single
//!   renderer, and cached artifacts are proven equal to fresh ones);
//! * **no lost results** — a finished job's report and manifest are
//!   flushed to `--state-dir` at completion time, so a mid-queue
//!   shutdown (graceful or SIGINT) loses nothing that had finished.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod run;
pub mod server;
pub mod telemetry;

pub use cache::{ArtifactCache, CacheEvent, CacheStats, CompiledLib};
pub use client::{wait_ready, Client};
pub use proto::JobOptions;
pub use run::{batch_report, render_report, run_job, JobResult};
pub use server::{serve, ServeConfig};
pub use telemetry::ServerTelemetry;
