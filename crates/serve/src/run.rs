//! Executing one job: the batch pipeline (synthesis → exploration →
//! confirmation) fed from the artifact cache, plus the canonical report
//! renderer both the service and `narada detect --report-out` share.
//!
//! Byte-identity between the served and batch paths is a test-enforced
//! invariant, and it falls out of three facts:
//!
//! 1. cached artifacts are byte-identical to freshly derived ones
//!    (deterministic compilation; the cache suite asserts MIR equality),
//! 2. the pipeline itself is deterministic at any thread count (see
//!    `narada_core::parallel`),
//! 3. both paths render through [`render_report`], which includes no
//!    wall-clock, host, or worker-count facts.

use crate::cache::{ArtifactCache, CacheEvent, CacheStats};
use crate::proto::JobOptions;
use crate::telemetry::ServerTelemetry;
use narada_core::digest::Fnv1a;
use narada_core::pipeline::SynthesisOutput;
use narada_core::SynthesisOptions;
use narada_detect::race::CoarseRaceKey;
use narada_detect::{evaluate_suite_full, ClassDetection, DetectConfig, TestReport};
use narada_lang::hir::Program;
use narada_obs::{Json, Obs, RunManifest};
use narada_screen::screen_pairs_with;
use narada_vm::Engine;
use std::sync::{Arc, Mutex};

/// Everything a finished job leaves behind.
#[derive(Debug)]
pub struct JobResult {
    /// The canonical `narada-report/1` document.
    pub report: String,
    /// The one-line summary (`cmd_detect`'s console line).
    pub summary: String,
    /// Cache activity attributable to this job.
    pub cache: CacheStats,
    /// The run manifest (telemetry; *not* part of the byte-identical
    /// surface — it carries wall-clock and host facts).
    pub manifest: RunManifest,
    /// Per-artifact cache traffic attributed to this job — the service
    /// writes these into its event log.
    pub cache_events: Vec<CacheEvent>,
}

/// Runs one job through the cache-fed pipeline. `progress` receives one
/// frame per stage (compile / synth / detect), each carrying a
/// `narada-manifest/1` snapshot of the job's telemetry so far.
/// `telemetry`, when present, receives per-stage and whole-job wall-clock
/// observations into the *server-level* registry — never into the job's
/// own manifest, which must stay run-invariant.
pub fn run_job(
    cache: &Mutex<ArtifactCache>,
    source: &str,
    opts: &JobOptions,
    progress: &mut dyn FnMut(Json),
    telemetry: Option<&ServerTelemetry>,
) -> Result<JobResult, String> {
    let obs = Obs::new();
    let job_start = std::time::Instant::now();
    let mut stage_start = job_start;
    let mut stage_done = |stage: &str, now: std::time::Instant| {
        if let Some(t) = telemetry {
            t.stage_histogram(stage)
                .observe_duration(now.duration_since(stage_start));
        }
        stage_start = now;
    };

    // Stage 0: compile through the artifact store. The lock covers only
    // artifact derivation, never pipeline execution; the per-job event
    // drain under the same hold is what makes attribution exact.
    let (lib, code, statics, surface, compile_delta, cache_events) = {
        let mut cache = cache.lock().map_err(|_| "artifact cache poisoned")?;
        cache.drain_events();
        let base = cache.stats;
        let lib = cache
            .compile_source(source)
            .map_err(|d| format!("compile failed: {d}"))?;
        let code =
            (opts.engine == Engine::Bytecode && !opts.generate_seeds).then(|| cache.bytecode(&lib));
        let statics = ((opts.static_filter || opts.static_rank) && !opts.generate_seeds)
            .then(|| cache.statics(&lib));
        let surface = opts
            .generate_seeds
            .then(|| cache.surface(&lib, opts.engine));
        let delta = cache.stats.delta(&base);
        delta.record(&obs);
        let events = cache.drain_events();
        (lib, code, statics, surface, delta, events)
    };
    stage_done("compile", std::time::Instant::now());
    progress(stage_frame("compile", opts, &obs).with("cache", cache_json(&compile_delta)));

    // Stage 1: synthesis, exactly `run_synthesis`'s shape. The generated
    // path re-derives program and MIR, so it drops the cached bytecode
    // and screens without the cached fixpoint (both keyed to the
    // original program).
    let synth_opts = SynthesisOptions {
        threads: opts.threads,
        static_filter: opts.static_filter,
        static_rank: opts.static_rank,
        generate_seeds: opts.generate_seeds,
        engine: opts.engine,
        code: code.clone(),
        ..SynthesisOptions::default()
    };
    let (prog, mir, out) = if opts.generate_seeds {
        let gopts = narada_gen::GenOptions {
            budget: opts.gen_budget,
            seed: opts.gen_seed,
            threads: opts.threads,
            engine: opts.engine,
            ..narada_gen::GenOptions::default()
        };
        let surface = surface.expect("generated path derives a surface");
        let generator = |p: &Program, m: &narada_lang::mir::MirProgram| {
            let basis = (!p.tests.is_empty())
                .then(|| narada_gen::FactBasis::from_tests_on(p, m, gopts.engine));
            narada_gen::generate(p, m, &surface, basis.as_ref(), &gopts, &obs).tests
        };
        narada_core::pipeline::synthesize_generated(
            &lib.prog,
            &lib.mir,
            &synth_opts,
            &generator,
            Some(&narada_screen::screen_pairs),
            &obs,
        )
    } else {
        let screener =
            |m: &narada_lang::mir::MirProgram, p: &narada_core::pairs::PairSet| match &statics {
                Some(statics) => screen_pairs_with(statics, m, p),
                None => narada_screen::screen_pairs(m, p),
            };
        let out = narada_core::pipeline::synthesize_observed(
            &lib.prog,
            &lib.mir,
            &synth_opts,
            Some(&screener),
            &obs,
        );
        ((*lib.prog).clone(), (*lib.mir).clone(), out)
    };
    stage_done("synth", std::time::Instant::now());
    progress(
        stage_frame("synth", opts, &obs)
            .with("pairs", Json::Int(out.pair_count() as i64))
            .with("tests", Json::Int(out.test_count() as i64)),
    );

    // Stage 2: exploration + confirmation, exactly `cmd_detect`'s shape.
    let cfg = DetectConfig {
        schedule_trials: opts.schedules,
        confirm_trials: opts.confirms,
        seed: opts.seed,
        budget: opts.budget,
        threads: opts.threads,
        strategy: opts.strategy.clone(),
        pct_horizon: opts.pct_horizon,
        engine: opts.engine,
        explore: opts.explore,
        code: if opts.generate_seeds { None } else { code },
        ..DetectConfig::default()
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let (reports, agg) = evaluate_suite_full(&prog, &mir, &seeds, &plans, &cfg, &obs);
    let now = std::time::Instant::now();
    stage_done("detect", now);
    if let Some(t) = telemetry {
        // Warm iff the program compilation itself was reused: that is the
        // cache temperature that dominates job latency.
        t.job_histogram(compile_delta.program_hits > 0)
            .observe_duration(now.duration_since(job_start));
    }
    progress(
        stage_frame("detect", opts, &obs)
            .with("races", Json::Int(agg.races_detected as i64))
            .with("reproduced", Json::Int((agg.harmful + agg.benign) as i64)),
    );

    let report = render_report(&prog, source, opts, &out, &reports, &agg);
    let summary = summary_line(plans.len(), &agg);
    let mut manifest = RunManifest::from_obs("serve.job", effective_threads(opts.threads), &obs);
    manifest.set_config("engine", opts.engine.label());
    manifest.set_config("strategy", opts.strategy.label());
    manifest.set_config("seed", opts.seed);
    if let Some(t) = telemetry {
        t.record_explore(opts.explore, &manifest);
    }
    Ok(JobResult {
        report,
        summary,
        cache: compile_delta,
        manifest,
        cache_events,
    })
}

fn effective_threads(threads: usize) -> u64 {
    narada_core::effective_threads(threads) as u64
}

fn stage_frame(stage: &str, opts: &JobOptions, obs: &Obs) -> Json {
    let manifest = RunManifest::from_obs("serve.job", effective_threads(opts.threads), obs);
    Json::obj()
        .with("event", Json::Str("stage".into()))
        .with("stage", Json::Str(stage.into()))
        .with("manifest", manifest.to_json())
}

/// [`CacheStats`] as a wire object.
pub fn cache_json(s: &CacheStats) -> Json {
    Json::obj()
        .with("program_hits", Json::Int(s.program_hits as i64))
        .with("program_misses", Json::Int(s.program_misses as i64))
        .with("unit_hits", Json::Int(s.unit_hits as i64))
        .with("unit_misses", Json::Int(s.unit_misses as i64))
        .with("code_hits", Json::Int(s.code_hits as i64))
        .with("code_misses", Json::Int(s.code_misses as i64))
        .with("statics_hits", Json::Int(s.statics_hits as i64))
        .with("statics_misses", Json::Int(s.statics_misses as i64))
        .with("surface_hits", Json::Int(s.surface_hits as i64))
        .with("surface_misses", Json::Int(s.surface_misses as i64))
        .with("evictions", Json::Int(s.evictions as i64))
}

/// `cmd_detect`'s console summary line, shared so the served and batch
/// paths print the same sentence.
pub fn summary_line(tests: usize, agg: &ClassDetection) -> String {
    format!(
        "{} tests: {} races detected, {} reproduced ({} harmful, {} benign), {} unreproduced",
        tests,
        agg.races_detected,
        agg.harmful + agg.benign,
        agg.harmful,
        agg.benign,
        agg.unreproduced
    )
}

fn render_key(prog: &Program, key: &CoarseRaceKey) -> String {
    let method = |m: &Option<narada_lang::hir::MethodId>| match m {
        Some(m) => prog.qualified_name(*m),
        None => "?".to_string(),
    };
    let field = match key.field {
        Some(f) => prog.field(f).name.to_string(),
        None => "<elem>".to_string(),
    };
    format!(
        "{}/{} field={}",
        method(&key.method_a),
        method(&key.method_b),
        field
    )
}

/// Renders the canonical `narada-report/1` document: the service's fetch
/// payload and `narada detect --report-out`'s file, byte-identical by
/// construction. Deliberately excludes every run-environment fact
/// (wall-clock, host, thread counts, cache temperature): only the
/// detection *results* and the options that determine them.
pub fn render_report(
    prog: &Program,
    source: &str,
    opts: &JobOptions,
    out: &SynthesisOutput,
    reports: &[TestReport],
    agg: &ClassDetection,
) -> String {
    let mut doc = String::new();
    doc.push_str("narada-report/1\n");
    doc.push_str(&format!(
        "program fnv={:016x}\n",
        Fnv1a::digest(source.as_bytes())
    ));
    doc.push_str(&format!(
        "options engine={} strategy={} seed={} schedules={} confirms={} budget={} \
         static_filter={} static_rank={} generate_seeds={}\n",
        opts.engine.label(),
        opts.strategy.label(),
        opts.seed,
        opts.schedules,
        opts.confirms,
        opts.budget,
        opts.static_filter,
        opts.static_rank,
        opts.generate_seeds,
    ));
    doc.push_str(&format!(
        "suite seeds={} pairs={} tests={}\n",
        prog.tests.len(),
        out.pair_count(),
        out.test_count(),
    ));
    for (i, rep) in reports.iter().enumerate() {
        doc.push_str(&format!(
            "test {i}: detected={} reproduced={}\n",
            rep.detected.len(),
            rep.reproduced.len()
        ));
        for key in &rep.detected {
            let line = match rep.reproduced.iter().find(|(k, _)| k == key) {
                Some((_, race)) => format!(
                    "  race {}: reproduced {}\n",
                    render_key(prog, key),
                    if race.benign { "benign" } else { "harmful" }
                ),
                None => format!("  race {}: unreproduced\n", render_key(prog, key)),
            };
            doc.push_str(&line);
        }
        for err in &rep.setup_errors {
            doc.push_str(&format!("  setup-error {err}\n"));
        }
    }
    doc.push_str(&format!(
        "summary tests={} races={} reproduced={} harmful={} benign={} unreproduced={}\n",
        reports.len(),
        agg.races_detected,
        agg.harmful + agg.benign,
        agg.harmful,
        agg.benign,
        agg.unreproduced
    ));
    doc
}

/// The batch twin of [`run_job`]: same pipeline, same renderer, but a
/// fresh single-use cache — what `narada detect --report-out` runs.
/// Exists so the byte-identity tests (and CI's `cmp`) have a
/// cache-independent reference to compare the service against.
pub fn batch_report(source: &str, opts: &JobOptions) -> Result<JobResult, String> {
    let cache = Mutex::new(ArtifactCache::with_capacity(1));
    run_job(&cache, source, opts, &mut |_| {}, None)
}

/// Convenience used by tests: run a job against a shared cache wrapped
/// in an [`Arc`].
pub fn run_job_on(
    cache: &Arc<Mutex<ArtifactCache>>,
    source: &str,
    opts: &JobOptions,
) -> Result<JobResult, String> {
    run_job(cache, source, opts, &mut |_| {}, None)
}
