//! The daemon: a [`TcpListener`] accept loop, a worker pool draining a
//! shared job queue, and a graceful-shutdown protocol.
//!
//! ## Lifecycle
//!
//! [`serve`] binds the address (writing the actual port to
//! `--port-file`, so scripts can bind port 0), spawns `workers` job
//! runners, and accepts connections until shutdown. Each connection gets
//! its own handler thread (requests are short; only `fetch --wait`
//! lingers, streaming progress frames).
//!
//! ## Shutdown
//!
//! A `shutdown` request — or SIGINT — closes intake: new `submit`s are
//! refused, queued jobs keep running, and the requester's response is
//! held back until the queue fully drains, then reports how many jobs
//! completed. Every job's report and manifest were already flushed to
//! `--state-dir` *at completion time*, not at shutdown, so a crash or
//! kill between jobs loses nothing that had finished.
//!
//! ## Determinism
//!
//! The worker count shards *jobs*, never a job's internals: each job
//! runs the deterministic batch pipeline with its own submitted
//! `threads` knob. Served verdicts are therefore byte-identical across
//! server worker counts — an acceptance-tested invariant.

use crate::cache::ArtifactCache;
use crate::proto::{error_frame, ok_frame, write_frame, JobOptions};
use crate::run::{cache_json, run_job};
use narada_obs::Json;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration (the `narada serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker-pool size (concurrent jobs). Result-neutral.
    pub workers: usize,
    /// Directory receiving each finished job's `job-N.report` and
    /// `job-N.manifest.json` as it completes.
    pub state_dir: Option<PathBuf>,
    /// File receiving the bound port number (ephemeral-port scripting).
    pub port_file: Option<PathBuf>,
    /// Artifact-cache capacity per family.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            state_dir: None,
            port_file: None,
            cache_capacity: 64,
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished with a report.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// One submitted job.
struct Job {
    id: u64,
    source: String,
    options: JobOptions,
    status: JobStatus,
    /// Progress frames recorded so far (fetch streams them).
    events: Vec<Json>,
    /// Canonical report (done) or error text (failed).
    report: Option<String>,
    error: Option<String>,
    summary: Option<String>,
}

/// Everything behind the state mutex.
struct State {
    jobs: Vec<Job>,
    queue: VecDeque<u64>,
    /// Intake closed: submits are refused, workers drain and exit.
    draining: bool,
}

/// Shared server state: job table + cache + wakeups.
struct Shared {
    state: Mutex<State>,
    /// Signaled on every job-state or event change (fetch waiters,
    /// workers, and the shutdown drainer all park here).
    changed: Condvar,
    cache: Mutex<ArtifactCache>,
    /// Terminates the accept loop once drained.
    stop: AtomicBool,
    config: ServeConfig,
}

/// SIGINT flag → the accept loop turns it into a drain, exactly like a
/// `shutdown` request.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint() {
    extern "C" fn on_sigint(_: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

/// Runs the daemon until a `shutdown` request (or SIGINT) drains it.
/// Returns the number of jobs completed over the server's lifetime.
pub fn serve(config: ServeConfig) -> Result<u64, String> {
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    if let Some(path) = &config.port_file {
        std::fs::write(path, format!("{port}\n"))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    if let Some(dir) = &config.state_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    eprintln!(
        "narada serve: listening on 127.0.0.1:{port} ({} worker(s))",
        config.workers.max(1)
    );

    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            jobs: Vec::new(),
            queue: VecDeque::new(),
            draining: false,
        }),
        changed: Condvar::new(),
        cache: Mutex::new(ArtifactCache::with_capacity(config.cache_capacity)),
        stop: AtomicBool::new(false),
        config,
    });

    std::thread::scope(|scope| {
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared));
        }

        while !shared.stop.load(Ordering::SeqCst) {
            if INTERRUPTED.swap(false, Ordering::SeqCst) {
                eprintln!("narada serve: interrupt — draining");
                begin_drain(&shared);
                wait_drained(&shared);
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("narada serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        // Drain flag is set by now; wake any parked worker so it exits.
        begin_drain(&shared);
        shared.changed.notify_all();
    });

    let state = shared.state.lock().map_err(|_| "state poisoned")?;
    Ok(state
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Done)
        .count() as u64)
}

/// Closes intake and wakes everyone.
fn begin_drain(shared: &Shared) {
    if let Ok(mut state) = shared.state.lock() {
        state.draining = true;
    }
    shared.changed.notify_all();
}

/// Blocks until no job is queued or running.
fn wait_drained(shared: &Shared) {
    let Ok(mut state) = shared.state.lock() else {
        return;
    };
    while state.jobs.iter().any(|j| !j.status.terminal()) {
        let (next, _) = shared
            .changed
            .wait_timeout(state, Duration::from_millis(200))
            .unwrap();
        state = next;
    }
}

/// One worker: pop, run, publish, repeat; exit once draining and empty.
fn worker_loop(shared: &Shared) {
    loop {
        let (id, source, options) = {
            let Ok(mut state) = shared.state.lock() else {
                return;
            };
            loop {
                if let Some(id) = state.queue.pop_front() {
                    let job = &mut state.jobs[id as usize];
                    job.status = JobStatus::Running;
                    let frame = Json::obj()
                        .with("event", Json::Str("started".into()))
                        .with("job", Json::Int(id as i64));
                    job.events.push(frame);
                    break (id, job.source.clone(), job.options.clone());
                }
                if state.draining || shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = shared
                    .changed
                    .wait_timeout(state, Duration::from_millis(200))
                    .unwrap();
                state = next;
            }
        };
        shared.changed.notify_all();

        // Run outside the state lock; progress frames re-lock briefly.
        let mut publish = |frame: Json| {
            if let Ok(mut state) = shared.state.lock() {
                state.jobs[id as usize].events.push(frame);
            }
            shared.changed.notify_all();
        };
        let result = run_job(&shared.cache, &source, &options, &mut publish);

        let Ok(mut state) = shared.state.lock() else {
            return;
        };
        let job = &mut state.jobs[id as usize];
        match result {
            Ok(done) => {
                flush_job(&shared.config, id, &done);
                job.status = JobStatus::Done;
                job.events.push(
                    Json::obj()
                        .with("event", Json::Str("done".into()))
                        .with("job", Json::Int(id as i64))
                        .with("summary", Json::Str(done.summary.clone()))
                        .with("cache", cache_json(&done.cache)),
                );
                job.summary = Some(done.summary);
                job.report = Some(done.report);
            }
            Err(e) => {
                job.status = JobStatus::Failed;
                job.events.push(
                    Json::obj()
                        .with("event", Json::Str("failed".into()))
                        .with("job", Json::Int(id as i64))
                        .with("error", Json::Str(e.clone())),
                );
                job.error = Some(e);
            }
        }
        drop(state);
        shared.changed.notify_all();
    }
}

/// Flushes a finished job's artifacts to the state directory — called at
/// completion time so shutdown (or a crash) can never lose a finished
/// result.
fn flush_job(config: &ServeConfig, id: u64, done: &crate::run::JobResult) {
    let Some(dir) = &config.state_dir else {
        return;
    };
    let report = dir.join(format!("job-{id}.report"));
    if let Err(e) = std::fs::write(&report, &done.report) {
        eprintln!("narada serve: cannot write {}: {e}", report.display());
    }
    let manifest = dir.join(format!("job-{id}.manifest.json"));
    if let Err(e) = std::fs::write(&manifest, done.manifest.to_pretty()) {
        eprintln!("narada serve: cannot write {}: {e}", manifest.display());
    }
}

/// Reads the next request off an idle connection without pinning the
/// server open: the stream carries a short read timeout, and every
/// timeout re-checks the stop flag. Without this, one idle client
/// would block `thread::scope`'s join — and therefore shutdown —
/// forever. Partial lines survive timeouts because the byte buffer
/// persists across `read_until` retries.
fn next_request(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<Option<Json>> {
    use std::io::BufRead;
    let mut bytes = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut bytes) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                let line = String::from_utf8_lossy(&bytes);
                if line.trim().is_empty() {
                    bytes.clear();
                    continue;
                }
                return Json::parse(&line).map(Some).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one client connection until EOF or shutdown-ack.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(req) = next_request(&mut reader, shared)? {
        let cmd = req.get("cmd").and_then(|c| c.as_str()).unwrap_or("");
        match cmd {
            "ping" => {
                let jobs = shared.state.lock().map(|s| s.jobs.len()).unwrap_or(0);
                write_frame(
                    &mut writer,
                    &ok_frame()
                        .with("service", Json::Str("narada-serve/1".into()))
                        .with("jobs", Json::Int(jobs as i64)),
                )?;
            }
            "submit" => {
                let resp = handle_submit(&req, shared);
                write_frame(&mut writer, &resp)?;
                shared.changed.notify_all();
            }
            "jobs" => {
                let resp = handle_jobs(shared);
                write_frame(&mut writer, &resp)?;
            }
            "stats" => {
                let resp = handle_stats(shared);
                write_frame(&mut writer, &resp)?;
            }
            "fetch" => {
                handle_fetch(&req, shared, &mut writer)?;
            }
            "shutdown" => {
                begin_drain(shared);
                wait_drained(shared);
                let (done, failed) = shared
                    .state
                    .lock()
                    .map(|s| {
                        (
                            s.jobs
                                .iter()
                                .filter(|j| j.status == JobStatus::Done)
                                .count(),
                            s.jobs
                                .iter()
                                .filter(|j| j.status == JobStatus::Failed)
                                .count(),
                        )
                    })
                    .unwrap_or((0, 0));
                shared.stop.store(true, Ordering::SeqCst);
                write_frame(
                    &mut writer,
                    &ok_frame()
                        .with("drained", Json::Bool(true))
                        .with("completed", Json::Int(done as i64))
                        .with("failed", Json::Int(failed as i64)),
                )?;
                return Ok(());
            }
            other => {
                write_frame(&mut writer, &error_frame(&format!("unknown cmd `{other}`")))?;
            }
        }
    }
    Ok(())
}

fn handle_submit(req: &Json, shared: &Shared) -> Json {
    let Some(source) = req.get("source").and_then(|s| s.as_str()) else {
        return error_frame("submit requires `source`");
    };
    let options = match req.get("options") {
        Some(doc) => match JobOptions::from_json(doc) {
            Ok(o) => o,
            Err(e) => return error_frame(&e),
        },
        None => JobOptions::default(),
    };
    let Ok(mut state) = shared.state.lock() else {
        return error_frame("state poisoned");
    };
    if state.draining {
        return error_frame("server is shutting down; submission refused");
    }
    let id = state.jobs.len() as u64;
    let mut job = Job {
        id,
        source: source.to_string(),
        options,
        status: JobStatus::Queued,
        events: Vec::new(),
        report: None,
        error: None,
        summary: None,
    };
    job.events.push(
        Json::obj()
            .with("event", Json::Str("queued".into()))
            .with("job", Json::Int(id as i64)),
    );
    state.jobs.push(job);
    state.queue.push_back(id);
    ok_frame().with("job", Json::Int(id as i64))
}

fn job_row(job: &Job) -> Json {
    let mut row = Json::obj()
        .with("job", Json::Int(job.id as i64))
        .with("status", Json::Str(job.status.label().into()))
        .with(
            "source_fnv",
            Json::Str(format!("{:016x}", ArtifactCache::program_key(&job.source))),
        );
    if let Some(s) = &job.summary {
        row.set("summary", Json::Str(s.clone()));
    }
    if let Some(e) = &job.error {
        row.set("error", Json::Str(e.clone()));
    }
    row
}

fn handle_jobs(shared: &Shared) -> Json {
    let Ok(state) = shared.state.lock() else {
        return error_frame("state poisoned");
    };
    ok_frame().with("jobs", Json::Arr(state.jobs.iter().map(job_row).collect()))
}

fn handle_stats(shared: &Shared) -> Json {
    let Ok(cache) = shared.cache.lock() else {
        return error_frame("cache poisoned");
    };
    let (programs, units, code, statics, surfaces) = cache.sizes();
    ok_frame().with("cache", cache_json(&cache.stats)).with(
        "sizes",
        Json::obj()
            .with("programs", Json::Int(programs as i64))
            .with("units", Json::Int(units as i64))
            .with("code", Json::Int(code as i64))
            .with("statics", Json::Int(statics as i64))
            .with("surfaces", Json::Int(surfaces as i64)),
    )
}

/// Streams a job's progress frames (when `wait`) and its final state.
fn handle_fetch(req: &Json, shared: &Shared, writer: &mut TcpStream) -> std::io::Result<()> {
    let Some(id) = req.get("job").and_then(|j| j.as_i64()) else {
        return write_frame(writer, &error_frame("fetch requires `job`"));
    };
    let wait = matches!(req.get("wait"), Some(Json::Bool(true)));
    let mut sent = 0usize;
    loop {
        let (frames, status, report, error, summary) = {
            let Ok(state) = shared.state.lock() else {
                return write_frame(writer, &error_frame("state poisoned"));
            };
            let Some(job) = state.jobs.get(id as usize) else {
                return write_frame(writer, &error_frame(&format!("no such job {id}")));
            };
            (
                job.events[sent..].to_vec(),
                job.status,
                job.report.clone(),
                job.error.clone(),
                job.summary.clone(),
            )
        };
        if wait {
            for frame in &frames {
                write_frame(writer, frame)?;
            }
            sent += frames.len();
        }
        if status.terminal() || !wait {
            let mut resp = ok_frame()
                .with("job", Json::Int(id))
                .with("status", Json::Str(status.label().into()));
            if let Some(r) = report {
                resp.set("report", Json::Str(r));
            }
            if let Some(s) = summary {
                resp.set("summary", Json::Str(s));
            }
            if let Some(e) = error {
                resp.set("error", Json::Str(e));
            }
            return write_frame(writer, &resp);
        }
        // Park until something changes, then re-check.
        let Ok(state) = shared.state.lock() else {
            return write_frame(writer, &error_frame("state poisoned"));
        };
        let _ = shared
            .changed
            .wait_timeout(state, Duration::from_millis(200))
            .unwrap();
    }
}
