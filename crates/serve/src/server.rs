//! The daemon: a [`TcpListener`] accept loop, a worker pool draining a
//! shared job queue, and a graceful-shutdown protocol.
//!
//! ## Lifecycle
//!
//! [`serve`] binds the address (writing the actual port to
//! `--port-file`, so scripts can bind port 0), spawns `workers` job
//! runners, and accepts connections until shutdown. Each connection gets
//! its own handler thread (requests are short; only `fetch --wait`
//! lingers, streaming progress frames).
//!
//! ## Shutdown
//!
//! A `shutdown` request — or SIGINT — closes intake: new `submit`s are
//! refused, queued jobs keep running, and the requester's response is
//! held back until the queue fully drains, then reports how many jobs
//! completed. Every job's report and manifest were already flushed to
//! `--state-dir` *at completion time*, not at shutdown, so a crash or
//! kill between jobs loses nothing that had finished.
//!
//! ## Determinism
//!
//! The worker count shards *jobs*, never a job's internals: each job
//! runs the deterministic batch pipeline with its own submitted
//! `threads` knob. Served verdicts are therefore byte-identical across
//! server worker counts — an acceptance-tested invariant.

use crate::cache::ArtifactCache;
use crate::proto::{error_frame, ok_frame, write_frame, JobOptions};
use crate::run::{cache_json, run_job};
use crate::telemetry::ServerTelemetry;
use narada_obs::{EventLog, Json, MetricValue};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration (the `narada serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker-pool size (concurrent jobs). Result-neutral.
    pub workers: usize,
    /// Directory receiving each finished job's `job-N.report` and
    /// `job-N.manifest.json` as it completes, plus the JSONL event log.
    pub state_dir: Option<PathBuf>,
    /// File receiving the bound port number (ephemeral-port scripting).
    pub port_file: Option<PathBuf>,
    /// Artifact-cache capacity per family.
    pub cache_capacity: usize,
    /// Wall budget (milliseconds) past which a running job is flagged by
    /// the slow-job watchdog in `watch`/`health` frames.
    pub slow_job_ms: u64,
    /// Size threshold for event-log rotation, in bytes.
    pub event_log_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            state_dir: None,
            port_file: None,
            cache_capacity: 64,
            slow_job_ms: 60_000,
            event_log_max_bytes: 1 << 20,
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished with a report.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

/// One submitted job.
struct Job {
    id: u64,
    source: String,
    options: JobOptions,
    status: JobStatus,
    /// Progress frames recorded so far (fetch streams them).
    events: Vec<Json>,
    /// Canonical report (done) or error text (failed).
    report: Option<String>,
    error: Option<String>,
    summary: Option<String>,
    /// Uptime nanoseconds when a worker picked the job up — the slow-job
    /// watchdog measures runtime from here.
    started_at: Option<u64>,
}

/// Everything behind the state mutex.
struct State {
    jobs: Vec<Job>,
    queue: VecDeque<u64>,
    /// Intake closed: submits are refused, workers drain and exit.
    draining: bool,
}

/// Shared server state: job table + cache + wakeups + live telemetry.
struct Shared {
    state: Mutex<State>,
    /// Signaled on every job-state or event change (fetch waiters,
    /// workers, and the shutdown drainer all park here).
    changed: Condvar,
    cache: Mutex<ArtifactCache>,
    /// Terminates the accept loop once drained.
    stop: AtomicBool,
    config: ServeConfig,
    /// Server-level registry, heartbeats, event log — see
    /// [`crate::telemetry`].
    telemetry: ServerTelemetry,
}

/// SIGINT flag → the accept loop turns it into a drain, exactly like a
/// `shutdown` request.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint() {
    extern "C" fn on_sigint(_: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

/// Runs the daemon until a `shutdown` request (or SIGINT) drains it.
/// Returns the number of jobs completed over the server's lifetime.
pub fn serve(config: ServeConfig) -> Result<u64, String> {
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    if let Some(path) = &config.port_file {
        std::fs::write(path, format!("{port}\n"))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    if let Some(dir) = &config.state_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    eprintln!(
        "narada serve: listening on 127.0.0.1:{port} ({} worker(s))",
        config.workers.max(1)
    );

    let event_log = match &config.state_dir {
        Some(dir) => match EventLog::open(dir, "events", config.event_log_max_bytes) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("narada serve: event log disabled: {e}");
                None
            }
        },
        None => None,
    };
    let telemetry = ServerTelemetry::new(
        config.workers.max(1),
        config.slow_job_ms.saturating_mul(1_000_000),
        event_log,
    );
    telemetry.log_event(
        "server.start",
        Json::obj()
            .with("port", Json::Int(port as i64))
            .with("workers", Json::Int(config.workers.max(1) as i64)),
    );

    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            jobs: Vec::new(),
            queue: VecDeque::new(),
            draining: false,
        }),
        changed: Condvar::new(),
        cache: Mutex::new(ArtifactCache::with_capacity(config.cache_capacity)),
        stop: AtomicBool::new(false),
        config,
        telemetry,
    });

    std::thread::scope(|scope| {
        for w in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared, w));
        }

        while !shared.stop.load(Ordering::SeqCst) {
            if INTERRUPTED.swap(false, Ordering::SeqCst) {
                eprintln!("narada serve: interrupt — draining");
                begin_drain(&shared);
                wait_drained(&shared);
                shared.stop.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("narada serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        // Drain flag is set by now; wake any parked worker so it exits.
        begin_drain(&shared);
        shared.changed.notify_all();
    });

    let state = shared.state.lock().map_err(|_| "state poisoned")?;
    Ok(state
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Done)
        .count() as u64)
}

/// Closes intake and wakes everyone.
fn begin_drain(shared: &Shared) {
    if let Ok(mut state) = shared.state.lock() {
        if !state.draining {
            state.draining = true;
            let queued = state.queue.len();
            drop(state);
            shared.telemetry.log_event(
                "server.drain",
                Json::obj().with("queued", Json::Int(queued as i64)),
            );
        }
    }
    shared.changed.notify_all();
}

/// Blocks until no job is queued or running.
fn wait_drained(shared: &Shared) {
    let Ok(mut state) = shared.state.lock() else {
        return;
    };
    while state.jobs.iter().any(|j| !j.status.terminal()) {
        let (next, _) = shared
            .changed
            .wait_timeout(state, Duration::from_millis(200))
            .unwrap();
        state = next;
    }
}

/// One worker: pop, run, publish, repeat; exit once draining and empty.
/// Stamps its liveness heartbeat on every wakeup, so `health` can tell a
/// parked worker (fresh beat, empty queue) from a wedged one.
fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        shared.telemetry.beat(worker);
        let (id, source, options) = {
            let Ok(mut state) = shared.state.lock() else {
                return;
            };
            loop {
                if let Some(id) = state.queue.pop_front() {
                    let job = &mut state.jobs[id as usize];
                    job.status = JobStatus::Running;
                    job.started_at = Some(shared.telemetry.uptime_ns());
                    let frame = Json::obj()
                        .with("event", Json::Str("started".into()))
                        .with("job", Json::Int(id as i64));
                    job.events.push(frame);
                    break (id, job.source.clone(), job.options.clone());
                }
                if state.draining || shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = shared
                    .changed
                    .wait_timeout(state, Duration::from_millis(200))
                    .unwrap();
                state = next;
                shared.telemetry.beat(worker);
            }
        };
        shared.changed.notify_all();
        shared.telemetry.log_event(
            "job.started",
            Json::obj()
                .with("job", Json::Int(id as i64))
                .with("worker", Json::Int(worker as i64)),
        );

        // Run outside the state lock; progress frames re-lock briefly.
        let mut publish = |frame: Json| {
            if let Ok(mut state) = shared.state.lock() {
                state.jobs[id as usize].events.push(frame);
            }
            shared.changed.notify_all();
        };
        let result = run_job(
            &shared.cache,
            &source,
            &options,
            &mut publish,
            Some(&shared.telemetry),
        );
        shared.telemetry.beat(worker);

        let Ok(mut state) = shared.state.lock() else {
            return;
        };
        let job = &mut state.jobs[id as usize];
        match result {
            Ok(done) => {
                flush_job(&shared.config, id, &done);
                let summary = done.summary.clone();
                job.status = JobStatus::Done;
                job.events.push(
                    Json::obj()
                        .with("event", Json::Str("done".into()))
                        .with("job", Json::Int(id as i64))
                        .with("summary", Json::Str(summary.clone()))
                        .with("cache", cache_json(&done.cache)),
                );
                job.summary = Some(done.summary);
                job.report = Some(done.report);
                drop(state);
                shared
                    .telemetry
                    .metrics
                    .counter("serve.jobs.completed")
                    .inc();
                for ev in &done.cache_events {
                    shared.telemetry.log_event(
                        "cache",
                        Json::obj()
                            .with("job", Json::Int(id as i64))
                            .with("family", Json::Str(ev.family.into()))
                            .with("kind", Json::Str(ev.kind.into()))
                            .with("key", Json::Str(ev.key.clone())),
                    );
                }
                shared.telemetry.log_event(
                    "job.done",
                    Json::obj()
                        .with("job", Json::Int(id as i64))
                        .with("summary", Json::Str(summary)),
                );
            }
            Err(e) => {
                job.status = JobStatus::Failed;
                job.events.push(
                    Json::obj()
                        .with("event", Json::Str("failed".into()))
                        .with("job", Json::Int(id as i64))
                        .with("error", Json::Str(e.clone())),
                );
                job.error = Some(e.clone());
                drop(state);
                shared.telemetry.metrics.counter("serve.jobs.failed").inc();
                shared.telemetry.log_event(
                    "job.failed",
                    Json::obj()
                        .with("job", Json::Int(id as i64))
                        .with("error", Json::Str(e)),
                );
            }
        }
        shared.changed.notify_all();
    }
}

/// Flushes a finished job's artifacts to the state directory — called at
/// completion time so shutdown (or a crash) can never lose a finished
/// result.
fn flush_job(config: &ServeConfig, id: u64, done: &crate::run::JobResult) {
    let Some(dir) = &config.state_dir else {
        return;
    };
    let report = dir.join(format!("job-{id}.report"));
    if let Err(e) = std::fs::write(&report, &done.report) {
        eprintln!("narada serve: cannot write {}: {e}", report.display());
    }
    let manifest = dir.join(format!("job-{id}.manifest.json"));
    if let Err(e) = std::fs::write(&manifest, done.manifest.to_pretty()) {
        eprintln!("narada serve: cannot write {}: {e}", manifest.display());
    }
}

/// Reads the next request off an idle connection without pinning the
/// server open: the stream carries a short read timeout, and every
/// timeout re-checks the stop flag. Without this, one idle client
/// would block `thread::scope`'s join — and therefore shutdown —
/// forever. Partial lines survive timeouts because the byte buffer
/// persists across `read_until` retries.
fn next_request(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<Option<Json>> {
    use std::io::BufRead;
    let mut bytes = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut bytes) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                let line = String::from_utf8_lossy(&bytes);
                if line.trim().is_empty() {
                    bytes.clear();
                    continue;
                }
                return Json::parse(&line).map(Some).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                });
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one client connection until EOF or shutdown-ack.
fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(req) = next_request(&mut reader, shared)? {
        let cmd = req.get("cmd").and_then(|c| c.as_str()).unwrap_or("");
        match cmd {
            "ping" => {
                let jobs = shared.state.lock().map(|s| s.jobs.len()).unwrap_or(0);
                write_frame(
                    &mut writer,
                    &ok_frame()
                        .with("service", Json::Str("narada-serve/1".into()))
                        .with("jobs", Json::Int(jobs as i64)),
                )?;
            }
            "submit" => {
                let resp = handle_submit(&req, shared);
                write_frame(&mut writer, &resp)?;
                shared.changed.notify_all();
            }
            "jobs" => {
                let resp = handle_jobs(shared);
                write_frame(&mut writer, &resp)?;
            }
            "stats" => {
                let resp = handle_stats(shared);
                write_frame(&mut writer, &resp)?;
            }
            "health" => {
                let resp = build_status(shared).with("type", Json::Str("health".into()));
                write_frame(&mut writer, &resp)?;
            }
            "watch" => {
                handle_watch(&req, shared, &mut writer)?;
            }
            "fetch" => {
                handle_fetch(&req, shared, &mut writer)?;
            }
            "shutdown" => {
                begin_drain(shared);
                wait_drained(shared);
                let (done, failed) = shared
                    .state
                    .lock()
                    .map(|s| {
                        (
                            s.jobs
                                .iter()
                                .filter(|j| j.status == JobStatus::Done)
                                .count(),
                            s.jobs
                                .iter()
                                .filter(|j| j.status == JobStatus::Failed)
                                .count(),
                        )
                    })
                    .unwrap_or((0, 0));
                shared.stop.store(true, Ordering::SeqCst);
                write_frame(
                    &mut writer,
                    &ok_frame()
                        .with("drained", Json::Bool(true))
                        .with("completed", Json::Int(done as i64))
                        .with("failed", Json::Int(failed as i64)),
                )?;
                return Ok(());
            }
            other => {
                write_frame(&mut writer, &error_frame(&format!("unknown cmd `{other}`")))?;
            }
        }
    }
    Ok(())
}

fn handle_submit(req: &Json, shared: &Shared) -> Json {
    let Some(source) = req.get("source").and_then(|s| s.as_str()) else {
        return error_frame("submit requires `source`");
    };
    let options = match req.get("options") {
        Some(doc) => match JobOptions::from_json(doc) {
            Ok(o) => o,
            Err(e) => return error_frame(&e),
        },
        None => JobOptions::default(),
    };
    let Ok(mut state) = shared.state.lock() else {
        return error_frame("state poisoned");
    };
    if state.draining {
        return error_frame("server is shutting down; submission refused");
    }
    let id = state.jobs.len() as u64;
    let mut job = Job {
        id,
        source: source.to_string(),
        options,
        status: JobStatus::Queued,
        events: Vec::new(),
        report: None,
        error: None,
        summary: None,
        started_at: None,
    };
    job.events.push(
        Json::obj()
            .with("event", Json::Str("queued".into()))
            .with("job", Json::Int(id as i64)),
    );
    let source_fnv = format!("{:016x}", ArtifactCache::program_key(&job.source));
    state.jobs.push(job);
    state.queue.push_back(id);
    drop(state);
    shared
        .telemetry
        .metrics
        .counter("serve.jobs.submitted")
        .inc();
    shared.telemetry.log_event(
        "job.queued",
        Json::obj()
            .with("job", Json::Int(id as i64))
            .with("source_fnv", Json::Str(source_fnv)),
    );
    ok_frame().with("job", Json::Int(id as i64))
}

fn job_row(job: &Job) -> Json {
    let mut row = Json::obj()
        .with("job", Json::Int(job.id as i64))
        .with("status", Json::Str(job.status.label().into()))
        .with(
            "source_fnv",
            Json::Str(format!("{:016x}", ArtifactCache::program_key(&job.source))),
        );
    if let Some(s) = &job.summary {
        row.set("summary", Json::Str(s.clone()));
    }
    if let Some(e) = &job.error {
        row.set("error", Json::Str(e.clone()));
    }
    row
}

fn handle_jobs(shared: &Shared) -> Json {
    let Ok(state) = shared.state.lock() else {
        return error_frame("state poisoned");
    };
    ok_frame().with("jobs", Json::Arr(state.jobs.iter().map(job_row).collect()))
}

fn family_counts(c: (usize, usize, usize, usize, usize)) -> Json {
    Json::obj()
        .with("programs", Json::Int(c.0 as i64))
        .with("units", Json::Int(c.1 as i64))
        .with("code", Json::Int(c.2 as i64))
        .with("statics", Json::Int(c.3 as i64))
        .with("surfaces", Json::Int(c.4 as i64))
}

fn handle_stats(shared: &Shared) -> Json {
    let Ok(cache) = shared.cache.lock() else {
        return error_frame("cache poisoned");
    };
    ok_frame()
        .with("cache", cache_json(&cache.stats))
        .with("sizes", family_counts(cache.sizes()))
        .with("capacity", family_counts(cache.capacities()))
        .with("uptime_ns", Json::Int(shared.telemetry.uptime_ns() as i64))
}

/// The shared body of `watch` and `health` frames: readiness, queue and
/// job-table summary, latency quantiles, cache occupancy vs capacity,
/// worker heartbeats, and the slow-job watchdog's flags.
fn build_status(shared: &Shared) -> Json {
    let t = &shared.telemetry;
    let now = t.uptime_ns();
    let (jobs, slow, draining) = match shared.state.lock() {
        Ok(state) => {
            let count = |s: JobStatus| state.jobs.iter().filter(|j| j.status == s).count() as i64;
            let mut rows = Vec::new();
            let mut slow = Vec::new();
            for job in &state.jobs {
                let mut row = job_row(job);
                if job.status == JobStatus::Running {
                    let running_ns = now.saturating_sub(job.started_at.unwrap_or(now));
                    row.set("running_ns", Json::Int(running_ns as i64));
                    if running_ns > t.slow_job_ns() {
                        slow.push(
                            Json::obj()
                                .with("job", Json::Int(job.id as i64))
                                .with("running_ns", Json::Int(running_ns as i64)),
                        );
                    }
                }
                rows.push(row);
            }
            let jobs = Json::obj()
                .with("total", Json::Int(state.jobs.len() as i64))
                .with("queued", Json::Int(count(JobStatus::Queued)))
                .with("running", Json::Int(count(JobStatus::Running)))
                .with("done", Json::Int(count(JobStatus::Done)))
                .with("failed", Json::Int(count(JobStatus::Failed)))
                .with("table", Json::Arr(rows));
            (jobs, slow, state.draining)
        }
        Err(_) => (Json::obj(), Vec::new(), false),
    };
    let cache = match shared.cache.lock() {
        Ok(cache) => Json::obj()
            .with("counters", cache_json(&cache.stats))
            .with("sizes", family_counts(cache.sizes()))
            .with("capacity", family_counts(cache.capacities())),
        Err(_) => Json::obj(),
    };
    let heartbeats: Vec<Json> = t
        .heartbeat_ages_ns()
        .into_iter()
        .map(|age| {
            if age == u64::MAX {
                Json::Null
            } else {
                Json::Int(age as i64)
            }
        })
        .collect();
    ok_frame()
        .with(
            "status",
            Json::Str(if draining { "draining" } else { "ready" }.into()),
        )
        .with("uptime_ns", Json::Int(now as i64))
        .with("jobs", jobs)
        .with("latency", t.latency_json())
        .with("cache", cache)
        .with("explore", t.explore_json())
        .with(
            "workers",
            Json::obj()
                .with("count", Json::Int(heartbeats.len() as i64))
                .with("heartbeat_ages_ns", Json::Arr(heartbeats)),
        )
        .with("slow_jobs", Json::Arr(slow))
        .with("slow_job_budget_ns", Json::Int(t.slow_job_ns() as i64))
}

/// `watch`: periodic status frames until `count` frames were sent (0 =
/// until the client disconnects or the server stops). Each frame adds a
/// `delta` of the server-level scalar metrics since the previous frame.
fn handle_watch(req: &Json, shared: &Shared, writer: &mut TcpStream) -> std::io::Result<()> {
    let interval = req
        .get("interval_ms")
        .and_then(Json::as_i64)
        .unwrap_or(1000)
        .clamp(10, 60_000) as u64;
    let count = req.get("count").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
    let mut base = shared.telemetry.metrics.snapshot();
    let mut seq = 0u64;
    loop {
        seq += 1;
        let mut delta = Json::obj();
        for (name, value) in shared.telemetry.metrics.snapshot_delta(&base) {
            if let MetricValue::Counter(v) | MetricValue::Gauge(v) = value {
                delta.set(&name, Json::Int(v as i64));
            }
        }
        base = shared.telemetry.metrics.snapshot();
        let frame = build_status(shared)
            .with("type", Json::Str("watch".into()))
            .with("seq", Json::Int(seq as i64))
            .with("delta", delta);
        write_frame(writer, &frame)?;
        if count != 0 && seq >= count {
            return Ok(());
        }
        // Sleep in short steps so shutdown isn't held hostage by a
        // long-interval watcher.
        let deadline = std::time::Instant::now() + Duration::from_millis(interval);
        while std::time::Instant::now() < deadline {
            if shared.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Streams a job's progress frames (when `wait`) and its final state.
fn handle_fetch(req: &Json, shared: &Shared, writer: &mut TcpStream) -> std::io::Result<()> {
    let Some(id) = req.get("job").and_then(|j| j.as_i64()) else {
        return write_frame(writer, &error_frame("fetch requires `job`"));
    };
    let wait = matches!(req.get("wait"), Some(Json::Bool(true)));
    let mut sent = 0usize;
    loop {
        let (frames, status, report, error, summary) = {
            let Ok(state) = shared.state.lock() else {
                return write_frame(writer, &error_frame("state poisoned"));
            };
            let Some(job) = state.jobs.get(id as usize) else {
                return write_frame(writer, &error_frame(&format!("no such job {id}")));
            };
            (
                job.events[sent..].to_vec(),
                job.status,
                job.report.clone(),
                job.error.clone(),
                job.summary.clone(),
            )
        };
        if wait {
            for frame in &frames {
                write_frame(writer, frame)?;
            }
            sent += frames.len();
        }
        if status.terminal() || !wait {
            let mut resp = ok_frame()
                .with("job", Json::Int(id))
                .with("status", Json::Str(status.label().into()));
            if let Some(r) = report {
                resp.set("report", Json::Str(r));
            }
            if let Some(s) = summary {
                resp.set("summary", Json::Str(s));
            }
            if let Some(e) = error {
                resp.set("error", Json::Str(e));
            }
            return write_frame(writer, &resp);
        }
        // Park until something changes, then re-check.
        let Ok(state) = shared.state.lock() else {
            return write_frame(writer, &error_frame("state poisoned"));
        };
        let _ = shared
            .changed
            .wait_timeout(state, Duration::from_millis(200))
            .unwrap();
    }
}
