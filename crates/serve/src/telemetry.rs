//! Server-level telemetry: the live side of the observability story.
//!
//! Per-job manifests carry only thread-count-invariant metrics plus
//! driver-set timings — that contract is what the byte-identity tests
//! gate. Everything inherently run-varying about the *daemon* (latency
//! distributions, worker liveness, event history) therefore lives here,
//! in a separate [`Metrics`] registry that is exposed through the `watch`
//! / `health` / `stats` verbs and the JSONL event log, and is never
//! rendered into a manifest.

use narada_detect::{ExploreMode, FORK_ONLY_METRICS};
use narada_obs::{
    EventLog, Histogram, Json, MetricValue, Metrics, RunManifest, LATENCY_BUCKETS_NS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sentinel for "this worker has not beaten yet".
const NEVER: u64 = u64::MAX;

/// The daemon's live telemetry bundle, shared across workers and
/// connection handlers.
#[derive(Debug)]
pub struct ServerTelemetry {
    /// Server-lifetime registry: job/stage latency histograms and
    /// lifecycle counters (`serve.jobs.*`). Distinct from every job's own
    /// manifest registry by design.
    pub metrics: Metrics,
    started: Instant,
    log: Option<EventLog>,
    /// Per-worker last-heartbeat timestamp, in uptime nanoseconds.
    heartbeats: Vec<AtomicU64>,
    slow_job_ns: u64,
}

impl ServerTelemetry {
    /// A bundle for `workers` workers, flagging jobs that run longer than
    /// `slow_job_ns`, logging events to `log` when given.
    pub fn new(workers: usize, slow_job_ns: u64, log: Option<EventLog>) -> ServerTelemetry {
        ServerTelemetry {
            metrics: Metrics::new(),
            started: Instant::now(),
            log,
            heartbeats: (0..workers.max(1)).map(|_| AtomicU64::new(NEVER)).collect(),
            slow_job_ns,
        }
    }

    /// Monotonic nanoseconds since server start. All telemetry timestamps
    /// are uptime-relative: no wall clock, so logs from repeated runs
    /// diff cleanly.
    pub fn uptime_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The configured slow-job wall budget, in nanoseconds.
    pub fn slow_job_ns(&self) -> u64 {
        self.slow_job_ns
    }

    /// Stamps worker `w`'s liveness heartbeat (each worker calls this on
    /// every queue wakeup, ~5/s when idle).
    pub fn beat(&self, w: usize) {
        if let Some(slot) = self.heartbeats.get(w) {
            slot.store(self.uptime_ns(), Ordering::Relaxed);
        }
    }

    /// Nanoseconds since each worker's last heartbeat (`u64::MAX` before
    /// the first).
    pub fn heartbeat_ages_ns(&self) -> Vec<u64> {
        let now = self.uptime_ns();
        self.heartbeats
            .iter()
            .map(|slot| match slot.load(Ordering::Relaxed) {
                NEVER => NEVER,
                t => now.saturating_sub(t),
            })
            .collect()
    }

    /// The job-wall histogram for a cache-cold or cache-warm job (a job
    /// is warm when its program-cache delta shows a hit).
    pub fn job_histogram(&self, warm: bool) -> Histogram {
        let name = if warm {
            "serve.job.wall_ns.warm"
        } else {
            "serve.job.wall_ns.cold"
        };
        self.metrics.histogram(name, LATENCY_BUCKETS_NS)
    }

    /// The per-stage latency histogram (`compile` / `synth` / `detect`).
    pub fn stage_histogram(&self, stage: &str) -> Histogram {
        self.metrics
            .histogram(&format!("serve.stage.{stage}.wall_ns"), LATENCY_BUCKETS_NS)
    }

    /// Appends one event to the JSONL log (if configured), stamped with
    /// the uptime and `event` kind. Log failures are counted, never
    /// propagated — telemetry must not take a job down.
    pub fn log_event(&self, kind: &str, fields: Json) {
        let Some(log) = &self.log else {
            return;
        };
        let mut entry = Json::obj()
            .with("t_ns", Json::Int(self.uptime_ns() as i64))
            .with("event", Json::Str(kind.to_string()));
        if let Json::Obj(pairs) = fields {
            for (k, v) in pairs {
                entry.set(&k, v);
            }
        }
        if log.append(&entry).is_err() {
            self.metrics.counter("serve.eventlog.errors").inc();
        }
    }

    /// Folds one finished job's explorer accounting into the
    /// server-lifetime registry: a per-mode job count plus the cumulative
    /// fork-only `explore.*` counters lifted out of the job's manifest
    /// (rerun jobs by construction contribute nothing beyond their job
    /// count). The sums feed the `explore` section of `watch`/`health`
    /// frames and `narada top`.
    pub fn record_explore(&self, mode: ExploreMode, manifest: &RunManifest) {
        self.metrics
            .counter(&format!("serve.explore.jobs.{}", mode.label()))
            .inc();
        for name in FORK_ONLY_METRICS {
            if let Some(MetricValue::Counter(v)) = manifest.metric(name) {
                self.metrics.counter(&format!("serve.{name}")).add(*v);
            }
        }
    }

    /// The `explore` section of `watch`/`health`/`top` frames: per-mode
    /// job counts and the cumulative fork-explorer counters. Every key is
    /// always present (zeros before any fork job) so scripted consumers
    /// never branch on shape.
    pub fn explore_json(&self) -> Json {
        let c = |name: &str| Json::Int(self.metrics.counter(name).get() as i64);
        let mut doc = Json::obj().with(
            "jobs",
            Json::obj()
                .with("rerun", c("serve.explore.jobs.rerun"))
                .with("fork", c("serve.explore.jobs.fork")),
        );
        for name in FORK_ONLY_METRICS {
            let short = name.strip_prefix("explore.").unwrap_or(name);
            doc.set(short, c(&format!("serve.{name}")));
        }
        doc
    }

    /// The `latency` section of `watch`/`health`/`top` frames: job wall
    /// quantiles split cold vs warm, plus per-stage quantiles. Every key
    /// is always present (zeros when empty) so scripted consumers never
    /// branch on shape.
    pub fn latency_json(&self) -> Json {
        let quantiles = |name: &str| {
            let h = self.metrics.histogram(name, LATENCY_BUCKETS_NS);
            Json::obj()
                .with("count", Json::Int(h.count() as i64))
                .with("p50", Json::Int(h.quantile(0.50).unwrap_or(0) as i64))
                .with("p90", Json::Int(h.quantile(0.90).unwrap_or(0) as i64))
                .with("p99", Json::Int(h.quantile(0.99).unwrap_or(0) as i64))
        };
        Json::obj()
            .with("cold", quantiles("serve.job.wall_ns.cold"))
            .with("warm", quantiles("serve.job.wall_ns.warm"))
            .with(
                "stages",
                Json::obj()
                    .with("compile", quantiles("serve.stage.compile.wall_ns"))
                    .with("synth", quantiles("serve.stage.synth.wall_ns"))
                    .with("detect", quantiles("serve.stage.detect.wall_ns")),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_json_always_has_quantile_keys() {
        let t = ServerTelemetry::new(2, 1_000_000_000, None);
        let doc = t.latency_json();
        for side in ["cold", "warm"] {
            for key in ["count", "p50", "p90", "p99"] {
                assert_eq!(
                    doc.get(side)
                        .and_then(|s| s.get(key))
                        .and_then(Json::as_i64),
                    Some(0),
                    "{side}.{key}"
                );
            }
        }
        t.job_histogram(true).observe(1_000_000);
        let doc = t.latency_json();
        assert_eq!(
            doc.get("warm")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(
            doc.get("warm")
                .and_then(|s| s.get("p99"))
                .and_then(Json::as_i64)
                > Some(0)
        );
        assert!(doc.get("stages").and_then(|s| s.get("detect")).is_some());
    }

    #[test]
    fn explore_json_has_stable_shape_and_sums_fork_counters() {
        let t = ServerTelemetry::new(1, 1_000_000_000, None);
        let doc = t.explore_json();
        for key in ["forks", "probes", "snapshot_bytes", "prefix_steps_saved"] {
            assert_eq!(doc.get(key).and_then(Json::as_i64), Some(0), "{key}");
        }
        let mut m = RunManifest::from_obs("job", 1, &narada_obs::Obs::new());
        m.metrics
            .push(("explore.forks".into(), MetricValue::Counter(3)));
        m.metrics
            .push(("explore.probes".into(), MetricValue::Counter(12)));
        t.record_explore(ExploreMode::Fork, &m);
        t.record_explore(
            ExploreMode::Rerun,
            &RunManifest::from_obs("job", 1, &narada_obs::Obs::new()),
        );
        let doc = t.explore_json();
        assert_eq!(doc.get("forks").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("probes").and_then(Json::as_i64), Some(12));
        let jobs = doc.get("jobs").unwrap();
        assert_eq!(jobs.get("fork").and_then(Json::as_i64), Some(1));
        assert_eq!(jobs.get("rerun").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn heartbeats_age_from_never_to_fresh() {
        let t = ServerTelemetry::new(2, 1_000_000_000, None);
        assert_eq!(t.heartbeat_ages_ns(), vec![u64::MAX, u64::MAX]);
        t.beat(0);
        let ages = t.heartbeat_ages_ns();
        assert!(ages[0] < 1_000_000_000, "{ages:?}");
        assert_eq!(ages[1], u64::MAX);
    }
}
