//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every request and response is one [`Json`] object on one line
//! (`\n`-terminated, no framing beyond that), built with the workspace's
//! zero-dependency [`narada_obs::json`] — the service adds no new wire
//! format and no new dependencies.
//!
//! Requests carry a `cmd` field:
//!
//! | `cmd`      | fields                         | response |
//! |------------|--------------------------------|----------|
//! | `ping`     | —                              | `{ok, service, jobs}` |
//! | `submit`   | `source`, `options`            | `{ok, job}` |
//! | `jobs`     | —                              | `{ok, jobs: [...]}` |
//! | `fetch`    | `job`, `wait`                  | event lines, then `{ok, job, status, report, ...}` |
//! | `stats`    | —                              | `{ok, cache: {...}, sizes: {...}, capacity: {...}, uptime_ns}` |
//! | `health`   | —                              | `{ok, status, jobs, latency, cache, workers, slow_jobs, ...}` |
//! | `watch`    | `interval_ms`, `count`         | one `health`-shaped frame (plus `seq`, `delta`) per interval |
//! | `shutdown` | —                              | `{ok, drained, completed}` (after the queue drains) |
//!
//! `fetch` with `wait: true` is the streaming endpoint: the server
//! writes each `{"event": ...}` progress frame (carrying
//! `narada-manifest/1` snapshots) as its own line while the job runs,
//! then the final `{"ok": ...}` object. Responses always carry `ok`;
//! errors are `{ok: false, error: "..."}`.

use narada_detect::ExploreMode;
use narada_obs::Json;
use narada_vm::{Engine, ScheduleStrategy};
use std::io::{BufRead, Write};

/// Everything a job needs besides the library source: the knobs of
/// `narada detect`, wire-serializable. Defaults mirror the CLI's
/// (schedules 6, confirms 4, seed 42 — see `cmd_detect`), so an
/// option-less submission reproduces a flag-less batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOptions {
    /// Random schedules per synthesized test (detection pass).
    pub schedules: usize,
    /// Directed attempts per potential race (confirmation pass).
    pub confirms: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Step budget per concurrent run.
    pub budget: u64,
    /// Worker threads for the job's own pipeline stages (`0` = one per
    /// core). Results are identical at any value; the server's worker
    /// pool size is a separate, equally result-neutral knob.
    pub threads: usize,
    /// Scheduler family for the detection pass.
    pub strategy: ScheduleStrategy,
    /// PCT change-point horizon (other strategies ignore it).
    pub pct_horizon: u64,
    /// Execution engine (bytecode jobs share the cached compilation).
    pub engine: Engine,
    /// Trial explorer: rerun each trial from `main()` or probe from
    /// copy-on-write snapshot forks. Result-neutral, like `threads`.
    pub explore: ExploreMode,
    /// Drop statically-discharged pairs before derivation.
    pub static_filter: bool,
    /// Rank surviving pairs by static suspicion score.
    pub static_rank: bool,
    /// Replace the seed suite with a generated one before synthesis.
    pub generate_seeds: bool,
    /// Candidate budget for `generate_seeds`.
    pub gen_budget: usize,
    /// Base seed for `generate_seeds`.
    pub gen_seed: u64,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            schedules: 6,
            confirms: 4,
            seed: 42,
            budget: 2_000_000,
            threads: 0,
            strategy: ScheduleStrategy::Random,
            pct_horizon: 1_000,
            engine: Engine::TreeWalk,
            explore: ExploreMode::Rerun,
            static_filter: false,
            static_rank: false,
            generate_seeds: false,
            gen_budget: 512,
            gen_seed: 0x67656e,
        }
    }
}

impl JobOptions {
    /// Wire form (field names match the CLI flags they mirror).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schedules", Json::Int(self.schedules as i64))
            .with("confirms", Json::Int(self.confirms as i64))
            .with("seed", Json::Int(self.seed as i64))
            .with("budget", Json::Int(self.budget as i64))
            .with("threads", Json::Int(self.threads as i64))
            .with("strategy", Json::Str(self.strategy.label()))
            .with("pct_horizon", Json::Int(self.pct_horizon as i64))
            .with("engine", Json::Str(self.engine.label().to_string()))
            .with("explore", Json::Str(self.explore.label().to_string()))
            .with("static_filter", Json::Bool(self.static_filter))
            .with("static_rank", Json::Bool(self.static_rank))
            .with("generate_seeds", Json::Bool(self.generate_seeds))
            .with("gen_budget", Json::Int(self.gen_budget as i64))
            .with("gen_seed", Json::Int(self.gen_seed as i64))
    }

    /// Parses the wire form; absent fields keep their defaults, unknown
    /// fields are ignored (so old clients talk to new servers and vice
    /// versa).
    pub fn from_json(doc: &Json) -> Result<JobOptions, String> {
        let mut o = JobOptions::default();
        let get_usize = |key: &str, cur: usize| -> Result<usize, String> {
            match doc.get(key) {
                Some(v) => v
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
                None => Ok(cur),
            }
        };
        let get_u64 = |key: &str, cur: u64| -> Result<u64, String> {
            match doc.get(key) {
                Some(v) => v
                    .as_i64()
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("`{key}` must be an integer")),
                None => Ok(cur),
            }
        };
        let get_bool = |key: &str, cur: bool| -> Result<bool, String> {
            match doc.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("`{key}` must be a boolean")),
                None => Ok(cur),
            }
        };
        o.schedules = get_usize("schedules", o.schedules)?;
        o.confirms = get_usize("confirms", o.confirms)?;
        o.seed = get_u64("seed", o.seed)?;
        o.budget = get_u64("budget", o.budget)?;
        o.threads = get_usize("threads", o.threads)?;
        if let Some(v) = doc.get("strategy") {
            let s = v.as_str().ok_or("`strategy` must be a string")?;
            o.strategy = ScheduleStrategy::parse(s)?;
        }
        o.pct_horizon = get_u64("pct_horizon", o.pct_horizon)?;
        if let Some(v) = doc.get("engine") {
            let s = v.as_str().ok_or("`engine` must be a string")?;
            o.engine = Engine::parse(s)?;
        }
        if let Some(v) = doc.get("explore") {
            let s = v.as_str().ok_or("`explore` must be a string")?;
            o.explore = ExploreMode::parse(s)
                .ok_or_else(|| format!("`explore` must be 'rerun' or 'fork', got `{s}`"))?;
        }
        o.static_filter = get_bool("static_filter", o.static_filter)?;
        o.static_rank = get_bool("static_rank", o.static_rank)?;
        o.generate_seeds = get_bool("generate_seeds", o.generate_seeds)?;
        o.gen_budget = get_usize("gen_budget", o.gen_budget)?;
        o.gen_seed = get_u64("gen_seed", o.gen_seed)?;
        Ok(o)
    }
}

/// Writes one protocol frame: compact JSON, one line, flushed.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> std::io::Result<()> {
    w.write_all(msg.to_compact().as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one protocol frame; `Ok(None)` on clean EOF.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Json::parse(&line)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// `{ok: false, error}` — the uniform failure response.
pub fn error_frame(msg: &str) -> Json {
    Json::obj()
        .with("ok", Json::Bool(false))
        .with("error", Json::Str(msg.to_string()))
}

/// `{ok: true, ...}` — the uniform success response base.
pub fn ok_frame() -> Json {
    Json::obj().with("ok", Json::Bool(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip() {
        let mut o = JobOptions {
            schedules: 3,
            confirms: 2,
            seed: 7,
            engine: Engine::Bytecode,
            explore: ExploreMode::Fork,
            strategy: ScheduleStrategy::parse("pct:3").unwrap(),
            static_rank: true,
            ..JobOptions::default()
        };
        let back = JobOptions::from_json(&o.to_json()).unwrap();
        assert_eq!(o, back);
        o.generate_seeds = true;
        let back = JobOptions::from_json(&o.to_json()).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn absent_fields_keep_defaults() {
        let parsed = JobOptions::from_json(&Json::obj().with("seed", Json::Int(9))).unwrap();
        assert_eq!(parsed.seed, 9);
        assert_eq!(parsed.schedules, JobOptions::default().schedules);
    }

    #[test]
    fn bad_fields_are_rejected() {
        assert!(JobOptions::from_json(&Json::obj().with("seed", Json::Str("x".into()))).is_err());
        assert!(
            JobOptions::from_json(&Json::obj().with("strategy", Json::Str("warp".into()))).is_err()
        );
        assert!(
            JobOptions::from_json(&Json::obj().with("explore", Json::Str("teleport".into())))
                .is_err()
        );
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ok_frame().with("job", Json::Int(4))).unwrap();
        write_frame(&mut buf, &error_frame("nope")).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let a = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(a.get("job").and_then(|j| j.as_i64()), Some(4));
        let b = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(b.get("error").and_then(|e| e.as_str()), Some("nope"));
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
