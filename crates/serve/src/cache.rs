//! The digest-keyed artifact store at the heart of `narada serve`.
//!
//! Every derived artifact the pipeline would otherwise rebuild from
//! scratch per job — parsed+lowered programs, per-class MIR bodies,
//! compiled bytecode, static screener summaries, generation API models —
//! is cached under a content digest, so resubmitting an unchanged (or
//! barely-changed) library re-derives only what actually changed:
//!
//! * **program** — FNV-1a of the raw source bytes → the fully compiled
//!   [`CompiledLib`]. A hit skips parsing, type checking, and lowering
//!   entirely.
//! * **unit** — [`narada_lang::digest::class_unit`] digest of one class
//!   (own declarations *plus* the interfaces of everything it references)
//!   → that class's lowered [`ClassBodies`]. On a program miss the
//!   compiler consults this family per class, so editing one method body
//!   re-lowers exactly the classes in its dirty cone.
//! * **code** — program digest → the shared [`BcProgram`] compilation
//!   (bytecode engine only).
//! * **statics** — program digest → the screener's interprocedural
//!   [`Statics`] fixpoint.
//! * **surface** — (program digest, engine label) → the seed-generation
//!   [`ApiSurface`] model (engine-salted because the model is distilled
//!   from seed-suite executions on a concrete engine).
//!
//! Whole-program artifacts are keyed by the program digest rather than
//! participating in the unit cones: bytecode and the screener fixpoint
//! genuinely depend on every body, so any source change must re-derive
//! them. The unit family is where the cone is sharp — and where the
//! service's incremental win on `edit one method, resubmit` comes from.
//!
//! Each family is a tick-stamped LRU bounded by
//! [`ArtifactCache::with_capacity`]; hits, misses, and evictions are
//! tallied in [`CacheStats`] and exported as `serve.cache.*` metrics so
//! run manifests prove (not just claim) warm-path behavior.

use narada_core::digest::Fnv1a;
use narada_gen::ApiSurface;
use narada_lang::digest::class_unit;
use narada_lang::hir::{ClassId, Program};
use narada_lang::lower::{lower_class, lower_test, ClassBodies};
use narada_lang::mir::MirProgram;
use narada_lang::Diagnostics;
use narada_obs::Obs;
use narada_screen::summaries::{analyze, Statics};
use narada_vm::{BcProgram, Engine};
use std::collections::HashMap;
use std::sync::Arc;

/// A fully compiled library: the program-cache value.
#[derive(Debug)]
pub struct CompiledLib {
    /// FNV-1a digest of the source bytes (the program-cache key).
    pub digest: u64,
    /// Parsed and type-checked HIR.
    pub prog: Arc<Program>,
    /// Lowered MIR, assembled from per-class cached bodies plus
    /// freshly-lowered tests.
    pub mir: Arc<MirProgram>,
    /// Per-class unit digests, indexed by [`ClassId`]. Exposed so callers
    /// (and tests) can observe the dirty cone of an edit directly.
    pub unit_digests: Vec<u64>,
}

/// Hit/miss/eviction tallies, one pair per cache family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Program-level hits (whole compilation reused).
    pub program_hits: u64,
    /// Program-level misses (source never seen, or evicted).
    pub program_misses: u64,
    /// Class-unit hits (lowered bodies reused during a program miss).
    pub unit_hits: u64,
    /// Class-unit misses (bodies re-lowered: the dirty cone).
    pub unit_misses: u64,
    /// Bytecode hits.
    pub code_hits: u64,
    /// Bytecode misses.
    pub code_misses: u64,
    /// Screener-fixpoint hits.
    pub statics_hits: u64,
    /// Screener-fixpoint misses.
    pub statics_misses: u64,
    /// Generation-surface hits.
    pub surface_hits: u64,
    /// Generation-surface misses.
    pub surface_misses: u64,
    /// Entries dropped by LRU pressure, summed over all families.
    pub evictions: u64,
}

impl CacheStats {
    /// Total hits across every family.
    pub fn hits(&self) -> u64 {
        self.program_hits + self.unit_hits + self.code_hits + self.statics_hits + self.surface_hits
    }

    /// Total misses across every family.
    pub fn misses(&self) -> u64 {
        self.program_misses
            + self.unit_misses
            + self.code_misses
            + self.statics_misses
            + self.surface_misses
    }

    /// Records the tallies as `serve.cache.<family>.<hits|misses>`
    /// counters (plus `serve.cache.evictions`) into `obs`, from where
    /// they flow into run manifests.
    pub fn record(&self, obs: &Obs) {
        let m = &obs.metrics;
        m.counter("serve.cache.program.hits").add(self.program_hits);
        m.counter("serve.cache.program.misses")
            .add(self.program_misses);
        m.counter("serve.cache.unit.hits").add(self.unit_hits);
        m.counter("serve.cache.unit.misses").add(self.unit_misses);
        m.counter("serve.cache.code.hits").add(self.code_hits);
        m.counter("serve.cache.code.misses").add(self.code_misses);
        m.counter("serve.cache.statics.hits").add(self.statics_hits);
        m.counter("serve.cache.statics.misses")
            .add(self.statics_misses);
        m.counter("serve.cache.surface.hits").add(self.surface_hits);
        m.counter("serve.cache.surface.misses")
            .add(self.surface_misses);
        m.counter("serve.cache.evictions").add(self.evictions);
    }

    /// `self - base`, for per-job deltas against a long-lived cache.
    pub fn delta(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            program_hits: self.program_hits - base.program_hits,
            program_misses: self.program_misses - base.program_misses,
            unit_hits: self.unit_hits - base.unit_hits,
            unit_misses: self.unit_misses - base.unit_misses,
            code_hits: self.code_hits - base.code_hits,
            code_misses: self.code_misses - base.code_misses,
            statics_hits: self.statics_hits - base.statics_hits,
            statics_misses: self.statics_misses - base.statics_misses,
            surface_hits: self.surface_hits - base.surface_hits,
            surface_misses: self.surface_misses - base.surface_misses,
            evictions: self.evictions - base.evictions,
        }
    }
}

/// One LRU slot: the artifact plus its last-touched tick.
#[derive(Debug)]
struct Slot<T> {
    value: T,
    last_used: u64,
}

/// A bounded, tick-stamped LRU map (one cache family).
#[derive(Debug)]
struct Family<K, T> {
    slots: HashMap<K, Slot<T>>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, T> Family<K, T> {
    fn new(capacity: usize) -> Self {
        Family {
            slots: HashMap::new(),
            capacity,
        }
    }

    fn get(&mut self, key: &K, tick: u64) -> Option<&T> {
        let slot = self.slots.get_mut(key)?;
        slot.last_used = tick;
        Some(&slot.value)
    }

    /// Inserts and evicts the least-recently-used entry if over
    /// capacity; returns the evicted key, if any.
    fn insert(&mut self, key: K, value: T, tick: u64) -> Option<K> {
        self.slots.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
        if self.slots.len() <= self.capacity {
            return None;
        }
        let victim = self
            .slots
            .iter()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(k, _)| k.clone())?;
        self.slots.remove(&victim);
        Some(victim)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// One cache-traffic event: the service drains these per job into its
/// JSONL event log, so cache behavior is auditable artifact-by-artifact
/// (which digest hit, which got evicted) rather than only in aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEvent {
    /// Cache family: `program`, `unit`, `code`, `statics`, `surface`.
    pub family: &'static str,
    /// `hit`, `miss`, or `evict`.
    pub kind: &'static str,
    /// The artifact digest, rendered `{:016x}` (surface keys append
    /// `/<engine>`).
    pub key: String,
}

/// The content-addressed artifact store (see the module docs).
#[derive(Debug)]
pub struct ArtifactCache {
    tick: u64,
    programs: Family<u64, Arc<CompiledLib>>,
    units: Family<u64, Arc<ClassBodies>>,
    code: Family<u64, Arc<BcProgram>>,
    statics: Family<u64, Arc<Statics>>,
    surfaces: Family<(u64, &'static str), Arc<ApiSurface>>,
    /// Running tallies; read them any time, or [`CacheStats::record`]
    /// them into an [`Obs`].
    pub stats: CacheStats,
    /// Per-artifact traffic since the last [`ArtifactCache::drain_events`].
    events: Vec<CacheEvent>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::with_capacity(64)
    }
}

impl ArtifactCache {
    /// A cache holding at most `capacity` entries *per family* (the unit
    /// family gets `8 * capacity`: classes outnumber programs).
    pub fn with_capacity(capacity: usize) -> ArtifactCache {
        let capacity = capacity.max(1);
        ArtifactCache {
            tick: 0,
            programs: Family::new(capacity),
            units: Family::new(capacity * 8),
            code: Family::new(capacity),
            statics: Family::new(capacity),
            surfaces: Family::new(capacity),
            stats: CacheStats::default(),
            events: Vec::new(),
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn event(&mut self, family: &'static str, kind: &'static str, key: u64) {
        self.events.push(CacheEvent {
            family,
            kind,
            key: format!("{key:016x}"),
        });
    }

    /// Takes (and clears) the per-artifact traffic recorded since the
    /// last drain. Jobs run their cache operations under one lock hold,
    /// so the service drains right after to attribute events per job.
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.events)
    }

    /// The digest used as the program-cache key for `src`.
    pub fn program_key(src: &str) -> u64 {
        Fnv1a::digest(src.as_bytes())
    }

    /// Compiles `src` through the cache: a program hit returns the stored
    /// [`CompiledLib`] untouched; a miss parses and type-checks, then
    /// assembles the MIR from per-class unit lookups (re-lowering only
    /// the classes whose unit digest is new) and freshly-lowered tests.
    pub fn compile_source(&mut self, src: &str) -> Result<Arc<CompiledLib>, Diagnostics> {
        let key = Self::program_key(src);
        let tick = self.bump();
        if let Some(lib) = self.programs.get(&key, tick).map(Arc::clone) {
            self.stats.program_hits += 1;
            self.event("program", "hit", key);
            return Ok(lib);
        }
        self.stats.program_misses += 1;
        self.event("program", "miss", key);

        let prog = narada_lang::compile(src)?;
        let unit_digests: Vec<u64> = (0..prog.classes.len() as u32)
            .map(|c| {
                let mut sink = Fnv1a::new();
                class_unit(&prog, ClassId(c), &mut sink);
                sink.finish()
            })
            .collect();

        let mut mir = MirProgram::default();
        let mut methods: Vec<Option<narada_lang::mir::Body>> = Vec::new();
        methods.resize_with(prog.methods.len(), || None);
        for (c, &digest) in unit_digests.iter().enumerate() {
            let bodies = match self.units.get(&digest, tick).map(Arc::clone) {
                Some(b) => {
                    self.stats.unit_hits += 1;
                    self.event("unit", "hit", digest);
                    b
                }
                None => {
                    self.stats.unit_misses += 1;
                    self.event("unit", "miss", digest);
                    let fresh = Arc::new(lower_class(&prog, ClassId(c as u32)));
                    if let Some(victim) = self.units.insert(digest, Arc::clone(&fresh), tick) {
                        self.stats.evictions += 1;
                        self.event("unit", "evict", victim);
                    }
                    fresh
                }
            };
            for (m, body) in &bodies.methods {
                methods[m.0 as usize] = Some(body.clone());
            }
            for (f, body) in &bodies.inits {
                mir.field_inits.insert(*f, body.clone());
            }
        }
        mir.methods = methods
            .into_iter()
            .map(|b| b.expect("every method is owned by exactly one class"))
            .collect();
        for t in &prog.tests {
            mir.tests.push(lower_test(&prog, t));
        }

        let lib = Arc::new(CompiledLib {
            digest: key,
            prog: Arc::new(prog),
            mir: Arc::new(mir),
            unit_digests,
        });
        if let Some(victim) = self.programs.insert(key, Arc::clone(&lib), tick) {
            self.stats.evictions += 1;
            self.event("program", "evict", victim);
        }
        Ok(lib)
    }

    /// The shared bytecode compilation for `lib` (compiling on miss).
    pub fn bytecode(&mut self, lib: &CompiledLib) -> Arc<BcProgram> {
        let tick = self.bump();
        if let Some(code) = self.code.get(&lib.digest, tick).map(Arc::clone) {
            self.stats.code_hits += 1;
            self.event("code", "hit", lib.digest);
            return code;
        }
        self.stats.code_misses += 1;
        self.event("code", "miss", lib.digest);
        let code = Arc::new(BcProgram::compile(&lib.prog, &lib.mir));
        if let Some(victim) = self.code.insert(lib.digest, Arc::clone(&code), tick) {
            self.stats.evictions += 1;
            self.event("code", "evict", victim);
        }
        code
    }

    /// The screener's interprocedural fixpoint for `lib` (analyzing on
    /// miss).
    pub fn statics(&mut self, lib: &CompiledLib) -> Arc<Statics> {
        let tick = self.bump();
        if let Some(s) = self.statics.get(&lib.digest, tick).map(Arc::clone) {
            self.stats.statics_hits += 1;
            self.event("statics", "hit", lib.digest);
            return s;
        }
        self.stats.statics_misses += 1;
        self.event("statics", "miss", lib.digest);
        let s = Arc::new(analyze(&lib.mir));
        if let Some(victim) = self.statics.insert(lib.digest, Arc::clone(&s), tick) {
            self.stats.evictions += 1;
            self.event("statics", "evict", victim);
        }
        s
    }

    /// The seed-generation API model for `lib` on `engine` (distilling
    /// on miss). Mirrors [`narada_gen::generate_suite`]'s choice: seeded
    /// from the program's own tests when it has any, from declarations
    /// otherwise.
    pub fn surface(&mut self, lib: &CompiledLib, engine: Engine) -> Arc<ApiSurface> {
        let key = (lib.digest, engine.label());
        let tick = self.bump();
        let surface_key = |k: &(u64, &str)| format!("{:016x}/{}", k.0, k.1);
        if let Some(s) = self.surfaces.get(&key, tick).map(Arc::clone) {
            self.stats.surface_hits += 1;
            let key = surface_key(&key);
            self.events.push(CacheEvent {
                family: "surface",
                kind: "hit",
                key,
            });
            return s;
        }
        self.stats.surface_misses += 1;
        self.events.push(CacheEvent {
            family: "surface",
            kind: "miss",
            key: surface_key(&key),
        });
        let s = Arc::new(if lib.prog.tests.is_empty() {
            ApiSurface::for_program(&lib.prog)
        } else {
            ApiSurface::from_tests_on(&lib.prog, &lib.mir, engine)
        });
        if let Some(victim) = self.surfaces.insert(key, Arc::clone(&s), tick) {
            self.stats.evictions += 1;
            self.events.push(CacheEvent {
                family: "surface",
                kind: "evict",
                key: surface_key(&victim),
            });
        }
        s
    }

    /// Live entry counts per family: `(programs, units, code, statics,
    /// surfaces)`.
    pub fn sizes(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.programs.len(),
            self.units.len(),
            self.code.len(),
            self.statics.len(),
            self.surfaces.len(),
        )
    }

    /// Configured capacity per family, same order as
    /// [`ArtifactCache::sizes`] — lets `stats`/`health` report occupancy
    /// against its bound instead of a bare count.
    pub fn capacities(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.programs.capacity,
            self.units.capacity,
            self.code.capacity,
            self.statics.capacity,
            self.surfaces.capacity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "
        class A { int x; void bump() { this.x = this.x + 1; } }
        class B { A a; void go() { this.a = new A(); this.a.bump(); } }
        test t { var b = new B(); b.go(); }
    ";

    #[test]
    fn program_hit_on_resubmit() {
        let mut cache = ArtifactCache::default();
        let first = cache.compile_source(LIB).unwrap();
        let again = cache.compile_source(LIB).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "resubmit must reuse the Arc");
        assert_eq!(cache.stats.program_hits, 1);
        assert_eq!(cache.stats.program_misses, 1);
        assert_eq!(cache.stats.unit_misses, 2, "two classes lowered once");
        assert_eq!(cache.stats.unit_hits, 0, "program hit short-circuits units");
    }

    #[test]
    fn compiled_mir_matches_batch_lowering() {
        let mut cache = ArtifactCache::default();
        let lib = cache.compile_source(LIB).unwrap();
        let batch = narada_lang::lower::lower_program(&lib.prog);
        assert_eq!(lib.mir.methods.len(), batch.methods.len());
        for (i, body) in batch.methods.iter().enumerate() {
            assert_eq!(lib.mir.methods[i].dump(), body.dump(), "method {i}");
        }
        assert_eq!(lib.mir.tests.len(), batch.tests.len());
        for (i, body) in batch.tests.iter().enumerate() {
            assert_eq!(lib.mir.tests[i].dump(), body.dump(), "test {i}");
        }
        assert_eq!(lib.mir.field_inits.len(), batch.field_inits.len());
    }

    #[test]
    fn body_edit_misses_exactly_the_dirty_unit() {
        // Same-length body edit in A: only A's unit digest changes, so a
        // recompile re-lowers A and reuses B.
        let edited = LIB.replace("this.x + 1", "this.x + 2");
        assert_eq!(edited.len(), LIB.len(), "edit must preserve spans");
        let mut cache = ArtifactCache::default();
        let v1 = cache.compile_source(LIB).unwrap();
        let v2 = cache.compile_source(&edited).unwrap();
        assert_ne!(v1.digest, v2.digest);
        assert_ne!(v1.unit_digests[0], v2.unit_digests[0], "A is dirty");
        assert_eq!(v1.unit_digests[1], v2.unit_digests[1], "B is clean");
        assert_eq!(cache.stats.program_misses, 2);
        assert_eq!(cache.stats.unit_misses, 3, "A twice, B once");
        assert_eq!(cache.stats.unit_hits, 1, "B reused on the recompile");
    }

    #[test]
    fn whole_program_artifacts_hit_per_digest() {
        let mut cache = ArtifactCache::default();
        let lib = cache.compile_source(LIB).unwrap();
        let c1 = cache.bytecode(&lib);
        let c2 = cache.bytecode(&lib);
        assert!(Arc::ptr_eq(&c1, &c2));
        let s1 = cache.statics(&lib);
        let s2 = cache.statics(&lib);
        assert!(Arc::ptr_eq(&s1, &s2));
        let a1 = cache.surface(&lib, Engine::TreeWalk);
        let a2 = cache.surface(&lib, Engine::TreeWalk);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Engine-salted: the bytecode-engine surface is a distinct entry.
        let _ = cache.surface(&lib, Engine::Bytecode);
        assert_eq!(cache.stats.surface_misses, 2);
        assert_eq!(
            (
                cache.stats.code_hits,
                cache.stats.statics_hits,
                cache.stats.surface_hits
            ),
            (1, 1, 1)
        );
    }

    #[test]
    fn lru_evicts_oldest_program() {
        let mut cache = ArtifactCache::with_capacity(2);
        let srcs: Vec<String> = (0..3)
            .map(|i| format!("class C{i} {{ int x; void m() {{ this.x = {i}; }} }}"))
            .collect();
        for s in &srcs {
            cache.compile_source(s).unwrap();
        }
        assert_eq!(cache.sizes().0, 2, "capacity 2 holds 2 programs");
        assert!(cache.stats.evictions >= 1);
        // The oldest (srcs[0]) was evicted; re-adding it misses.
        let misses = cache.stats.program_misses;
        cache.compile_source(&srcs[0]).unwrap();
        assert_eq!(cache.stats.program_misses, misses + 1);
        // The most recent (srcs[2]) survived both evictions.
        let hits = cache.stats.program_hits;
        cache.compile_source(&srcs[2]).unwrap();
        assert_eq!(cache.stats.program_hits, hits + 1);
    }

    #[test]
    fn cache_events_carry_digests_and_drain() {
        let mut cache = ArtifactCache::with_capacity(2);
        let lib = cache.compile_source(LIB).unwrap();
        let events = cache.drain_events();
        let key = format!("{:016x}", ArtifactCache::program_key(LIB));
        assert!(events.contains(&CacheEvent {
            family: "program",
            kind: "miss",
            key: key.clone(),
        }));
        assert_eq!(
            events.iter().filter(|e| e.family == "unit").count(),
            2,
            "one unit event per class: {events:?}"
        );
        assert!(cache.drain_events().is_empty(), "drain clears the buffer");
        cache.compile_source(LIB).unwrap();
        let events = cache.drain_events();
        assert_eq!(
            events,
            vec![CacheEvent {
                family: "program",
                kind: "hit",
                key,
            }]
        );
        // Overflowing the program family reports the evicted digest.
        let _ = lib;
        for i in 0..3 {
            cache
                .compile_source(&format!("class C{i} {{ int x; }}"))
                .unwrap();
        }
        let events = cache.drain_events();
        assert!(
            events
                .iter()
                .any(|e| e.family == "program" && e.kind == "evict"),
            "{events:?}"
        );
    }

    #[test]
    fn capacities_mirror_construction() {
        let cache = ArtifactCache::with_capacity(4);
        assert_eq!(cache.capacities(), (4, 32, 4, 4, 4));
    }

    #[test]
    fn stats_delta_is_per_job() {
        let mut cache = ArtifactCache::default();
        cache.compile_source(LIB).unwrap();
        let base = cache.stats;
        cache.compile_source(LIB).unwrap();
        let d = cache.stats.delta(&base);
        assert_eq!(d.program_hits, 1);
        assert_eq!(d.program_misses, 0);
        assert_eq!(d.hits(), 1);
    }
}
