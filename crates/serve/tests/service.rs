//! End-to-end acceptance tests for the detection service: byte-identity
//! with the batch pipeline (cold, warm, and across worker counts),
//! dirty-cone cache invalidation over the wire, streamed progress
//! events, and lossless mid-queue shutdown.

use narada_detect::{evaluate_suite_full, DetectConfig};
use narada_lang::lower::lower_program;
use narada_obs::{Json, Obs, RunManifest};
use narada_serve::{render_report, serve, wait_ready, Client, JobOptions, ServeConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cheap-but-real options: full pipeline, smaller trial counts.
fn test_opts() -> JobOptions {
    JobOptions {
        schedules: 3,
        confirms: 2,
        ..JobOptions::default()
    }
}

/// The cache-free reference: plain compile → synthesize → detect →
/// render, no artifact store anywhere. What `narada detect
/// --report-out` computes.
fn reference_report(source: &str, opts: &JobOptions) -> String {
    let obs = Obs::new();
    let prog = narada_lang::compile(source).expect("reference compile");
    let mir = lower_program(&prog);
    let sopts = narada_core::SynthesisOptions {
        threads: opts.threads,
        static_filter: opts.static_filter,
        static_rank: opts.static_rank,
        engine: opts.engine,
        ..narada_core::SynthesisOptions::default()
    };
    let out = narada_core::pipeline::synthesize_observed(
        &prog,
        &mir,
        &sopts,
        Some(&narada_screen::screen_pairs),
        &obs,
    );
    let cfg = DetectConfig {
        schedule_trials: opts.schedules,
        confirm_trials: opts.confirms,
        seed: opts.seed,
        budget: opts.budget,
        threads: opts.threads,
        strategy: opts.strategy.clone(),
        pct_horizon: opts.pct_horizon,
        engine: opts.engine,
        ..DetectConfig::default()
    };
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let (reports, agg) = evaluate_suite_full(&prog, &mir, &seeds, &plans, &cfg, &obs);
    render_report(&prog, source, opts, &out, &reports, &agg)
}

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "narada-serve-test-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

struct TestServer {
    addr: String,
    handle: JoinHandle<Result<u64, String>>,
    dir: PathBuf,
}

impl TestServer {
    fn start(workers: usize, state_dir: bool) -> TestServer {
        let dir = scratch_dir("srv");
        let port_file = dir.join("port");
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            state_dir: state_dir.then(|| dir.join("state")),
            port_file: Some(port_file.clone()),
            cache_capacity: 64,
            ..ServeConfig::default()
        };
        let handle = std::thread::spawn(move || serve(config));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    break port;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its port file"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        let addr = format!("127.0.0.1:{port}");
        wait_ready(&addr, Duration::from_secs(10)).expect("server ready");
        TestServer { addr, handle, dir }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect")
    }

    /// Submit + wait + return the report.
    fn run(&self, source: &str, opts: &JobOptions) -> String {
        let mut client = self.client();
        let job = client.submit(source, opts).expect("submit");
        let resp = client.fetch(job, true, &mut |_| {}).expect("fetch");
        assert_eq!(
            resp.get("status").and_then(|s| s.as_str()),
            Some("done"),
            "job failed: {resp:?}"
        );
        resp.get("report")
            .and_then(|r| r.as_str())
            .expect("report")
            .to_string()
    }

    fn stop(self) -> u64 {
        self.client().shutdown().expect("shutdown");
        let completed = self.handle.join().expect("join").expect("serve");
        std::fs::remove_dir_all(&self.dir).ok();
        completed
    }
}

#[test]
fn served_reports_are_byte_identical_to_batch_cold_and_warm() {
    let opts = test_opts();
    let server = TestServer::start(2, false);
    for id in ["C1", "C2", "C3", "C4", "C5"] {
        let source = narada_corpus::by_id(id).expect("corpus id").source;
        let reference = reference_report(source, &opts);
        let cold = server.run(source, &opts);
        assert_eq!(cold, reference, "{id}: cold served != batch");
        let warm = server.run(source, &opts);
        assert_eq!(warm, reference, "{id}: warm served != batch");
    }
    // Warm resubmissions hit the program cache: parse, lower, and
    // screen were all skipped.
    let stats = server.client().stats().expect("stats");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("program_hits"))
        .and_then(|h| h.as_i64())
        .unwrap_or(0);
    assert!(hits >= 5, "expected >=5 warm program hits, got {hits}");
    assert_eq!(server.stop(), 10);
}

#[test]
fn served_report_is_independent_of_worker_count() {
    let opts = test_opts();
    let source = narada_corpus::by_id("C1").expect("C1").source;
    let mut reports = Vec::new();
    for workers in [1, 2, 8] {
        let server = TestServer::start(workers, false);
        reports.push(server.run(source, &opts));
        server.stop();
    }
    assert_eq!(reports[0], reports[1], "workers 1 vs 2");
    assert_eq!(reports[0], reports[2], "workers 1 vs 8");
}

const TWO_CLASS: &str = "
    class Counter { int n; void inc() { this.n = this.n + 1; } int get() { return this.n; } }
    class Holder {
        Counter c;
        void attach(Counter x) { this.c = x; }
        sync void tick() { this.c.inc(); }
    }
    test seed {
        var c = new Counter();
        var h = new Holder();
        h.attach(c);
        h.tick();
        c.inc();
    }
";

#[test]
fn one_method_edit_invalidates_exactly_the_dirty_cone() {
    // Same-length edit inside Counter.inc: Counter's unit digest moves,
    // Holder's does not (it only references Counter's interface).
    let edited = TWO_CLASS.replace("this.n + 1", "this.n + 2");
    assert_eq!(edited.len(), TWO_CLASS.len());
    let opts = test_opts();
    let server = TestServer::start(1, false);

    let before = server.run(TWO_CLASS, &opts);
    let stats0 = server.client().stats().expect("stats");
    let after = server.run(&edited, &opts);
    let stats1 = server.client().stats().expect("stats");

    // The report itself must track the edit (different program digest).
    assert_ne!(before, after);

    let delta = |field: &str| -> i64 {
        let read = |s: &Json| {
            s.get("cache")
                .and_then(|c| c.get(field))
                .and_then(|v| v.as_i64())
                .unwrap_or(0)
        };
        read(&stats1) - read(&stats0)
    };
    assert_eq!(delta("program_misses"), 1, "edited source is a new program");
    assert_eq!(delta("unit_misses"), 1, "only Counter re-lowers");
    assert_eq!(delta("unit_hits"), 1, "Holder's bodies are reused");
    // Whole-program artifacts are keyed by the program digest, so the
    // screener fixpoint re-derives (the suite runs without --static-*,
    // so no statics activity at all) and bytecode is untouched under
    // the default tree-walk engine.
    assert_eq!(delta("code_misses"), 0);
    server.stop();
}

#[test]
fn fetch_streams_manifest_backed_progress_events() {
    let opts = test_opts();
    let server = TestServer::start(1, false);
    let source = narada_corpus::by_id("C1").expect("C1").source;
    let mut client = server.client();
    let job = client.submit(source, &opts).expect("submit");
    let mut events: Vec<Json> = Vec::new();
    let resp = client
        .fetch(job, true, &mut |frame| events.push(frame.clone()))
        .expect("fetch");
    assert_eq!(resp.get("status").and_then(|s| s.as_str()), Some("done"));

    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"queued"), "events: {names:?}");
    assert!(names.contains(&"started"), "events: {names:?}");
    assert!(names.contains(&"done"), "events: {names:?}");
    let stages: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("stage").and_then(|s| s.as_str()))
        .collect();
    assert_eq!(stages, ["compile", "synth", "detect"]);

    // Every stage frame embeds a parseable narada-manifest/1 snapshot.
    for event in events.iter().filter(|e| e.get("stage").is_some()) {
        let doc = event.get("manifest").expect("manifest frame");
        let manifest = RunManifest::from_json(doc).expect("valid manifest");
        assert_eq!(manifest.name, "serve.job");
    }
    server.stop();
}

#[test]
fn mid_queue_shutdown_loses_no_completed_results() {
    // One worker, three queued jobs, shutdown issued while the queue is
    // still full: the drain must complete all three, and each report
    // must already be on disk (flushed at completion, not at exit).
    let opts = test_opts();
    let server = TestServer::start(1, true);
    let state = server.dir.join("state");
    let sources: Vec<&str> = ["C1", "C2", "C3"]
        .iter()
        .map(|id| narada_corpus::by_id(id).expect("corpus").source)
        .collect();
    let mut client = server.client();
    for source in &sources {
        client.submit(source, &opts).expect("submit");
    }
    // Immediately drain: jobs 1 and 2 are still queued behind job 0.
    let resp = client.shutdown().expect("shutdown");
    assert_eq!(resp.get("completed").and_then(|c| c.as_i64()), Some(3));
    assert_eq!(server.handle.join().expect("join").expect("serve"), 3);

    for (i, source) in sources.iter().enumerate() {
        let report = std::fs::read_to_string(state.join(format!("job-{i}.report")))
            .unwrap_or_else(|e| panic!("job-{i}.report missing: {e}"));
        assert_eq!(report, reference_report(source, &opts), "job {i}");
        let manifest = std::fs::read_to_string(state.join(format!("job-{i}.manifest.json")))
            .unwrap_or_else(|e| panic!("job-{i}.manifest.json missing: {e}"));
        RunManifest::parse(&manifest).expect("valid flushed manifest");
    }
    std::fs::remove_dir_all(&server.dir).ok();
}

#[test]
fn health_and_watch_frames_are_well_shaped_under_concurrent_submits() {
    let opts = test_opts();
    for workers in [1usize, 2, 8] {
        let server = TestServer::start(workers, false);
        // Concurrent submissions from independent clients — one cold
        // class each, plus one warm resubmission to light the warm
        // latency histogram.
        std::thread::scope(|scope| {
            for id in ["C1", "C2"] {
                scope.spawn(|| {
                    let source = narada_corpus::by_id(id).expect("corpus id").source;
                    server.run(source, &opts);
                });
            }
        });
        let c1 = narada_corpus::by_id("C1").expect("C1").source;
        server.run(c1, &opts);

        let health = server.client().health().expect("health");
        assert_eq!(
            health.get("type").and_then(|t| t.as_str()),
            Some("health"),
            "{health:?}"
        );
        assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ready"));
        assert!(health.get("uptime_ns").and_then(Json::as_i64).unwrap_or(-1) >= 0);
        let jobs = health.get("jobs").expect("jobs section");
        for key in ["total", "queued", "running", "done", "failed"] {
            assert!(jobs.get(key).and_then(Json::as_i64).is_some(), "jobs.{key}");
        }
        assert_eq!(jobs.get("done").and_then(Json::as_i64), Some(3));

        // Latency quantiles: every key present, cold + warm counts cover
        // all three completed jobs (C1 resubmission is the warm one).
        let latency = health.get("latency").expect("latency section");
        for side in ["cold", "warm"] {
            let node = latency
                .get(side)
                .unwrap_or_else(|| panic!("latency.{side}"));
            for key in ["count", "p50", "p90", "p99"] {
                assert!(
                    node.get(key).and_then(Json::as_i64).is_some(),
                    "latency.{side}.{key}"
                );
            }
        }
        let count = |side: &str| {
            latency
                .get(side)
                .and_then(|n| n.get("count"))
                .and_then(Json::as_i64)
                .unwrap_or(0)
        };
        assert_eq!(count("cold") + count("warm"), 3, "workers={workers}");
        assert!(count("warm") >= 1, "resubmission must classify warm");
        for stage in ["compile", "synth", "detect"] {
            let node = latency
                .get("stages")
                .and_then(|s| s.get(stage))
                .unwrap_or_else(|| panic!("latency.stages.{stage}"));
            assert_eq!(node.get("count").and_then(Json::as_i64), Some(3));
        }

        // Cache occupancy is reported against capacity; the worker pool
        // reports one heartbeat slot per worker, all beaten by now.
        let cache = health.get("cache").expect("cache section");
        for key in ["counters", "sizes", "capacity"] {
            assert!(cache.get(key).is_some(), "cache.{key}");
        }
        let hb = health
            .get("workers")
            .and_then(|w| w.get("heartbeat_ages_ns"))
            .and_then(|a| a.as_arr())
            .expect("heartbeat ages");
        assert_eq!(hb.len(), workers, "one heartbeat slot per worker");
        assert!(
            hb.iter().any(|age| age.as_i64().is_some()),
            "at least one worker has beaten: {hb:?}"
        );
        assert!(health.get("slow_jobs").and_then(|s| s.as_arr()).is_some());

        // The watch stream: monotone seq, health-shaped body, and a
        // scalar-only delta section (empty between idle frames).
        let mut seqs = Vec::new();
        let last = server
            .client()
            .watch(10, 3, &mut |frame| {
                seqs.push(frame.get("seq").and_then(Json::as_i64).unwrap_or(-1));
                assert_eq!(frame.get("type").and_then(|t| t.as_str()), Some("watch"));
                assert!(frame.get("delta").is_some(), "{frame:?}");
                assert!(frame.get("latency").is_some(), "{frame:?}");
                true
            })
            .expect("watch");
        assert_eq!(seqs, [1, 2, 3]);
        assert_eq!(last.get("seq").and_then(Json::as_i64), Some(3));
        server.stop();
    }
}

#[test]
fn event_log_records_job_lifecycle_in_valid_jsonl() {
    let opts = test_opts();
    let server = TestServer::start(2, true);
    let state = server.dir.join("state");
    let c1 = narada_corpus::by_id("C1").expect("C1").source;
    server.run(c1, &opts);
    server.run(c1, &opts); // warm: cache-hit events

    // Events are flushed per line at write time, so the log is complete
    // for finished jobs while the server is still up.
    let log = std::fs::read_to_string(state.join("events.jsonl")).expect("event log exists");
    let mut kinds = Vec::new();
    for line in log.lines() {
        let event = Json::parse(line).expect("every event-log line is one valid JSON object");
        assert!(
            event.get("t_ns").and_then(Json::as_i64).is_some(),
            "events carry uptime-relative timestamps: {line}"
        );
        kinds.push(
            event
                .get("event")
                .and_then(|e| e.as_str())
                .expect("event kind")
                .to_string(),
        );
    }
    for expected in [
        "server.start",
        "job.queued",
        "job.started",
        "job.done",
        "cache",
    ] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "missing `{expected}` in {kinds:?}"
        );
    }
    // The warm resubmission must have logged at least one program-cache
    // hit with its digest.
    assert!(
        log.lines()
            .any(|l| l.contains("\"family\":\"program\"") && l.contains("\"kind\":\"hit\"")),
        "warm job must log a program-cache hit"
    );
    server.stop();
}

#[test]
fn submit_after_shutdown_is_refused() {
    let server = TestServer::start(1, false);
    let addr = server.addr.clone();
    assert_eq!(server.stop(), 0);
    // The server is gone: either the connection is refused outright or
    // any in-flight submit errors.
    let refused = match Client::connect(&addr) {
        Err(_) => true,
        Ok(mut c) => c.submit("class X { }", &JobOptions::default()).is_err(),
    };
    assert!(refused, "submission after shutdown must fail");
}
