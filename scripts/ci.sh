#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from anywhere; always operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> static screener suite"
cargo test -q -p narada-screen

echo "==> screener/scheduler agreement (full corpus sweep)"
NARADA_AGREEMENT_FULL=1 cargo test -q --release --test properties screener_agreement

echo "==> replay regression suite (release)"
cargo test -q --release --test replay_fixtures

echo "==> engine differential suite (release, full 64-class lattice)"
# Tree-walk vs bytecode: byte-identical trace digests, heap outcomes,
# and race reports across the corpus, the replay fixtures, and the
# seeded difftest lattice at threads 1/2/8.
NARADA_ENGINE_FULL=1 cargo test -q --release -p narada-vm --test engine_differential

echo "==> detector_shootout example smoke test"
cargo run -q --release --example detector_shootout > /dev/null

echo "==> seed-generation smoke (fixed seed, thread-count determinism)"
# `narada gen` output must be byte-identical at any worker count.
GEN_DIR="$(mktemp -d)"
cargo run -q --release --bin narada -- gen C1 --budget 256 --seed 7 --threads 1 \
    > "$GEN_DIR/t1.mj"
cargo run -q --release --bin narada -- gen C1 --budget 256 --seed 7 --threads 8 \
    > "$GEN_DIR/t8.mj"
cmp "$GEN_DIR/t1.mj" "$GEN_DIR/t8.mj" \
    || { echo "gen output differs between --threads 1 and 8" >&2; exit 1; }
rm -rf "$GEN_DIR"

echo "==> differential corpus sweep (fixed seed, thread-count determinism)"
# 64 generated classes through screener + dynamic pipeline; any screener
# soundness disagreement exits 3 and fails the gate (set -e). The sweep
# output must also be byte-identical at any worker count.
DIFF_DIR="$(mktemp -d)"
for t in 1 2 8; do
    cargo run -q --release --bin narada -- difftest --seed 53759 --count 64 \
        --threads "$t" > "$DIFF_DIR/t$t.out"
    cargo run -q --release --bin narada -- difftest --seed 53759 --count 64 \
        --threads "$t" --engine bytecode > "$DIFF_DIR/bc-t$t.out"
done
cmp "$DIFF_DIR/t1.out" "$DIFF_DIR/t2.out" && cmp "$DIFF_DIR/t1.out" "$DIFF_DIR/t8.out" \
    || { echo "difftest output differs across --threads 1/2/8" >&2; exit 1; }
cmp "$DIFF_DIR/bc-t1.out" "$DIFF_DIR/bc-t2.out" && cmp "$DIFF_DIR/bc-t1.out" "$DIFF_DIR/bc-t8.out" \
    || { echo "difftest --engine bytecode output differs across --threads 1/2/8" >&2; exit 1; }
cmp "$DIFF_DIR/t1.out" "$DIFF_DIR/bc-t1.out" \
    || { echo "difftest output differs between engines" >&2; exit 1; }
rm -rf "$DIFF_DIR"

echo "==> fork-vs-rerun explorer differential (C1-C5 + difftest slice, threads 1/2/8)"
# The snapshot-forking explorer must be observably identical to the
# re-execution explorer: same verdict lines on the manual corpus and the
# same sweep digest on a generated-lattice slice, at every worker count.
FORK_DIR="$(mktemp -d)"
for c in C1 C2 C3 C4 C5; do
    cargo run -q --release --bin narada -- detect "$c" --schedules 4 --confirms 3 \
        --explore rerun > "$FORK_DIR/$c.rerun"
    for t in 1 2 8; do
        cargo run -q --release --bin narada -- detect "$c" --schedules 4 --confirms 3 \
            --explore fork --threads "$t" > "$FORK_DIR/$c.fork"
        cmp "$FORK_DIR/$c.rerun" "$FORK_DIR/$c.fork" \
            || { echo "detect $c --explore fork diverges from rerun at --threads $t" >&2; exit 1; }
    done
done
cargo run -q --release --bin narada -- difftest --seed 53759 --count 32 \
    --explore rerun > "$FORK_DIR/diff.rerun"
for t in 1 2 8; do
    cargo run -q --release --bin narada -- difftest --seed 53759 --count 32 \
        --explore fork --threads "$t" > "$FORK_DIR/diff.fork"
    cmp "$FORK_DIR/diff.rerun" "$FORK_DIR/diff.fork" \
        || { echo "difftest --explore fork diverges from rerun at --threads $t" >&2; exit 1; }
done
rm -rf "$FORK_DIR"

echo "==> serve smoke (byte-identity with batch, warm cache, clean shutdown)"
# A resident server must return the same bytes as `narada detect
# --report-out`, hit the artifact cache on resubmission, and drain
# cleanly on `narada shutdown`.
SERVE_DIR="$(mktemp -d)"
cargo run -q --release --bin narada -- serve --addr 127.0.0.1:0 --threads 2 \
    --port-file "$SERVE_DIR/port" --state-dir "$SERVE_DIR/state" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_DIR/port" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/port" ] || { echo "serve never wrote its port file" >&2; exit 1; }
ADDR="127.0.0.1:$(cat "$SERVE_DIR/port")"
cargo run -q --release --bin narada -- detect C1 --schedules 3 --confirms 2 \
    --report-out "$SERVE_DIR/batch.report" > /dev/null
for pass in cold warm; do
    JOB="$(cargo run -q --release --bin narada -- submit C1 --addr "$ADDR" \
        --schedules 3 --confirms 2 | awk '{print $2}')"
    cargo run -q --release --bin narada -- fetch "$JOB" --addr "$ADDR" \
        --wait --quiet --out "$SERVE_DIR/$pass.report" > /dev/null
    cmp "$SERVE_DIR/batch.report" "$SERVE_DIR/$pass.report" \
        || { echo "$pass served report differs from batch" >&2; exit 1; }
done
cargo run -q --release --bin narada -- jobs --addr "$ADDR" --stats \
    | grep -q '"program_hits":[1-9]' \
    || { echo "warm resubmission produced no program-cache hit" >&2; exit 1; }
cargo run -q --release --bin narada -- shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID" || { echo "serve exited non-zero" >&2; exit 1; }
cmp "$SERVE_DIR/batch.report" "$SERVE_DIR/state/job-0.report" \
    || { echo "state-dir flushed report differs from batch" >&2; exit 1; }
rm -rf "$SERVE_DIR"

echo "==> bench manifests (BENCH_synth / BENCH_explore / BENCH_screen / BENCH_gen / BENCH_difftest / BENCH_vm / BENCH_serve / BENCH_fork)"
# Each bench bin must emit a run manifest; `narada report` re-parses it
# and fails on any missing required field (schema, git_rev, metrics, ...).
MANIFEST_DIR="$(mktemp -d)"
trap 'rm -rf "$MANIFEST_DIR"' EXIT
NARADA_MANIFEST_DIR="$MANIFEST_DIR" \
    cargo run -q --release -p narada-bench --bin synth > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" NARADA_REPS=2 NARADA_MAX_TRIALS=8 NARADA_MAX_PLANS=3 \
    cargo run -q --release -p narada-bench --bin explore > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" \
    cargo run -q --release -p narada-bench --bin screen > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" NARADA_GEN_BUDGET=256 \
    cargo run -q --release -p narada-bench --bin gen > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" \
    cargo run -q --release -p narada-bench --bin difftest > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" NARADA_BENCH_REPS=2 \
    cargo run -q --release -p narada-bench --bin vm > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" NARADA_SERVE_REPS=1 NARADA_SERVE_CLIENTS=2 \
    NARADA_SERVE_JOBS=1 NARADA_SERVE_SCHEDULES=3 NARADA_SERVE_CONFIRMS=2 \
    cargo run -q --release -p narada-bench --bin serve > /dev/null
NARADA_MANIFEST_DIR="$MANIFEST_DIR" NARADA_REPS=2 \
    cargo run -q --release -p narada-bench --bin fork > /dev/null
for name in synth explore screen gen difftest vm serve fork; do
    manifest="$MANIFEST_DIR/BENCH_$name.json"
    [ -f "$manifest" ] || { echo "missing $manifest" >&2; exit 1; }
    cargo run -q --release --bin narada -- report "$manifest" > /dev/null
done

echo "==> perf-regression trend gate (fresh runs vs committed baselines)"
# Deterministic counters gate at zero tolerance; wall-clock metrics stay
# informational (host-dependent timings must not fail CI). The committed
# baselines under results/ were generated with exactly the env knobs the
# bench invocations above use — any config drift is itself a breach.
for name in vm serve fork; do
    cargo run -q --release --bin narada -- report --trend \
        "results/BENCH_$name.json" "$MANIFEST_DIR/BENCH_$name.json" --tolerance 0 \
        || { echo "trend gate breached for BENCH_$name" >&2; exit 1; }
done

# Fault injection: an inflated deterministic counter must trip the gate
# with its dedicated exit code — proof the gate actually gates.
sed 's/"serve.cache.program_hits": [0-9]*/"serve.cache.program_hits": 999999/' \
    "$MANIFEST_DIR/BENCH_serve.json" > "$MANIFEST_DIR/BENCH_serve.injected.json"
if cargo run -q --release --bin narada -- report --trend \
    results/BENCH_serve.json "$MANIFEST_DIR/BENCH_serve.injected.json" \
    --tolerance 0 > /dev/null; then
    echo "trend gate failed to trip on injected regression" >&2; exit 1
fi
rm -f "$MANIFEST_DIR/BENCH_serve.injected.json"

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
