#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from anywhere; always operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
