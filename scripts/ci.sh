#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from anywhere; always operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> replay regression suite (release)"
cargo test -q --release --test replay_fixtures

echo "==> detector_shootout example smoke test"
cargo run -q --release --example detector_shootout > /dev/null

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
