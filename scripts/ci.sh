#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
#
# Usage: scripts/ci.sh
# Runs from anywhere; always operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> static screener suite"
cargo test -q -p narada-screen

echo "==> screener/scheduler agreement (full corpus sweep)"
NARADA_AGREEMENT_FULL=1 cargo test -q --release --test properties screener_agreement

echo "==> replay regression suite (release)"
cargo test -q --release --test replay_fixtures

echo "==> detector_shootout example smoke test"
cargo run -q --release --example detector_shootout > /dev/null

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
