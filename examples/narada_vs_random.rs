//! Directed synthesis vs random search (the paper's §5 ConTeGe
//! comparison), on the C9 `CharArrayReader` — the class whose race
//! (`close` vs `read`) can actually crash, which is the only kind of
//! defect the random baseline's oracle can see.
//!
//! ```sh
//! cargo run --release --example narada_vs_random
//! ```

use narada::contege::{run_contege, ContegeOptions};
use narada::detect::{evaluate_suite, DetectConfig};
use narada::lang::lower::lower_program;
use narada::{synthesize, SynthesisOptions};
use std::time::Instant;

fn main() {
    let entry = narada::corpus::c9();
    let prog = entry.compile().expect("corpus compiles");
    let mir = lower_program(&prog);

    // Narada: directed synthesis.
    let t0 = Instant::now();
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = evaluate_suite(
        &prog,
        &mir,
        &seeds,
        &plans,
        &DetectConfig {
            schedule_trials: 6,
            confirm_trials: 4,
            ..Default::default()
        },
    );
    println!(
        "narada : {:>5} tests → {} races detected, {} reproduced harmful ({:.2?})",
        out.test_count(),
        agg.races_detected,
        agg.harmful,
        t0.elapsed()
    );

    // ConTeGe: random search with a crash/deadlock oracle.
    let t1 = Instant::now();
    let result = run_contege(
        &prog,
        &mir,
        &ContegeOptions {
            max_tests: 5_000,
            seed: 99,
            stop_at_first: true,
            ..Default::default()
        },
    );
    match result.first_violation_at() {
        Some(n) => println!(
            "contege: {n:>5} tests until the first violation ({:?}, {:.2?})",
            result.violations[0].kind,
            t1.elapsed()
        ),
        None => println!(
            "contege: {:>5} tests, no violation found ({:.2?})",
            result.tests_generated,
            t1.elapsed()
        ),
    }
    println!(
        "\nthe directed pipeline needs ~{}x fewer executions than random search",
        (result.tests_generated.max(1)) / out.test_count().max(1)
    );
}
