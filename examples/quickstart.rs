//! Quickstart: synthesize racy tests for the paper's Fig. 1 library and
//! confirm the race end-to-end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use narada::detect::{evaluate_test, DetectConfig};
use narada::{synthesize_source, SynthesisOptions};

fn main() {
    // The paper's Fig. 1: `update` is synchronized, so the library *looks*
    // thread-safe — but two Lib objects sharing one Counter race on
    // `count` because each thread holds only its own receiver's monitor.
    let src = r#"
        class Counter {
            int count;
            void inc() { this.count = this.count + 1; }
        }
        class Lib {
            Counter c;
            sync void update() { this.c.inc(); }
            sync void set(Counter x) { this.c = x; }
        }
        test seed {
            var r = new Counter();
            var p = new Lib();
            p.set(r);
            p.update();
        }
    "#;

    // Stage 1-3: trace the sequential seed, analyze, derive contexts,
    // synthesize multithreaded tests.
    let (prog, mir, out) =
        synthesize_source(src, &SynthesisOptions::default()).expect("library compiles");
    println!(
        "analysis: {} racing pairs → {} synthesized tests\n",
        out.pair_count(),
        out.test_count()
    );
    for test in &out.tests {
        println!("--- synthesized test #{} ---", test.index);
        println!("{}", test.plan.render(&prog));
    }

    // Stage 4: run each synthesized test under the detectors.
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let cfg = DetectConfig::default();
    for test in &out.tests {
        let report = evaluate_test(&prog, &mir, &seeds, &test.plan, &cfg);
        println!(
            "test #{}: {} race(s) detected, {} reproduced ({} harmful, {} benign)",
            test.index,
            report.detected.len(),
            report.reproduced.len(),
            report.harmful(),
            report.benign(),
        );
    }
}
