//! The paper's motivating example (§2): the hazelcast
//! `SynchronizedWriteBehindQueue` whose constructor picks `this` as the
//! mutex instead of the wrapped queue.
//!
//! This example runs the full pipeline on the C1 corpus port, prints the
//! synthesized racy client (compare paper Fig. 3), and demonstrates the
//! race concretely by showing a lost update under an adversarial schedule.
//!
//! ```sh
//! cargo run --example write_behind_queue
//! ```

use narada::core::execute_plan;
use narada::detect::{LocksetDetector, RaceFuzzerScheduler, StaticRaceKey};
use narada::lang::lower::lower_program;
use narada::vm::{Machine, RandomScheduler, VecSink};
use narada::{synthesize, SynthesisOptions};

fn main() {
    let entry = narada::corpus::c1();
    let prog = entry.compile().expect("corpus compiles");
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    println!(
        "C1 ({} {}): {} racing pairs, {} synthesized tests",
        entry.benchmark,
        entry.class_name,
        out.pair_count(),
        out.test_count()
    );

    // Pick a test racing removeFirst against removeFirst through two
    // wrappers — the exact scenario of paper Fig. 3.
    let sync_class = prog
        .class_by_name("SynchronizedWriteBehindQueue")
        .expect("class exists");
    let test = out
        .tests
        .iter()
        .find(|t| {
            let m0 = prog.method(t.plan.racy[0].method);
            let m1 = prog.method(t.plan.racy[1].method);
            m0.owner == sync_class
                && m0.name == "removeFirst"
                && m1.name == "removeFirst"
                && t.plan.expects_race
        })
        .expect("removeFirst||removeFirst test synthesized");
    println!("\nsynthesized racy client (cf. paper Fig. 3):");
    println!("{}", test.plan.render(&prog));

    // Execute under random schedules with the lockset detector attached.
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut first_race: Option<StaticRaceKey> = None;
    for seed in 0..20 {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut detector = LocksetDetector::new();
        let mut sched = RandomScheduler::new(seed);
        execute_plan(
            &mut machine,
            &seeds,
            &test.plan,
            &mut sched,
            &mut detector,
            2_000_000,
        )
        .expect("test executes");
        if let Some(r) = detector.races().first() {
            println!("\nlockset detector: {}", r.render(&prog));
            first_race = Some(r.static_key());
            break;
        }
    }

    // Confirm it with the RaceFuzzer-style directed scheduler.
    let key = first_race.expect("the wrapper race is always detectable");
    for trial in 0..10 {
        let mut machine = Machine::with_defaults(&prog, &mir);
        let mut sched = RaceFuzzerScheduler::new(key, trial);
        let mut sink = VecSink::new();
        execute_plan(
            &mut machine,
            &seeds,
            &test.plan,
            &mut sched,
            &mut sink,
            2_000_000,
        )
        .expect("test executes");
        if let Some(c) = sched.confirmed.first() {
            println!(
                "racefuzzer: race REPRODUCED on {}.{} — {}",
                c.obj,
                c.field,
                if c.benign { "benign" } else { "harmful" }
            );
            return;
        }
    }
    println!("racefuzzer: not reproduced in 10 directed trials");
}
