//! Detector comparison on one synthesized test: Eraser lockset vs
//! FastTrack happens-before vs RaceFuzzer-style confirmation — and why the
//! paper pairs synthesis with an *active* detector.
//!
//! Happens-before misses races whose accesses happen to be ordered by a
//! release→acquire edge in the observed schedule; the lockset discipline
//! catches them in any schedule; the directed scheduler proves them real.
//!
//! ```sh
//! cargo run --example detector_shootout
//! ```

use narada::core::execute_plan;
use narada::detect::{FastTrackDetector, LocksetDetector, RaceFuzzerScheduler};
use narada::lang::lower::lower_program;
use narada::vm::{Machine, RandomScheduler, TeeSink};
use narada::{compile, synthesize, SynthesisOptions};

fn main() {
    let src = r#"
        class Buffer {
            int[] data;
            int size;
            init(int cap) { this.data = new int[cap]; this.size = 0; }
            void push(int v) {
                if (this.size < this.data.length) {
                    this.data[this.size] = v;
                    this.size = this.size + 1;
                }
            }
            sync int pop() {
                if (this.size == 0) { return 0 - 1; }
                this.size = this.size - 1;
                return this.data[this.size];
            }
            int len() { return this.size; }
        }
        test seed {
            var b = new Buffer(8);
            b.push(1);
            var n = b.len();
            var x = b.pop();
        }
    "#;
    let prog = compile(src).expect("compiles");
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    println!(
        "{} racing pairs, {} synthesized tests",
        out.pair_count(),
        out.test_count()
    );
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

    for test in out.tests.iter().filter(|t| t.plan.expects_race).take(3) {
        let m0 = prog.qualified_name(test.plan.racy[0].method);
        let m1 = prog.qualified_name(test.plan.racy[1].method);
        println!("\n=== test #{}: {m0} || {m1} ===", test.index);

        let mut lockset_hits = 0usize;
        let mut hb_hits = 0usize;
        let mut fine_keys = Vec::new();
        for seed in 0..10 {
            let mut machine = Machine::with_defaults(&prog, &mir);
            let mut lockset = LocksetDetector::new();
            let mut hb = FastTrackDetector::new();
            let mut sink = TeeSink {
                a: &mut lockset,
                b: &mut hb,
            };
            let mut sched = RandomScheduler::new(seed);
            if execute_plan(
                &mut machine,
                &seeds,
                &test.plan,
                &mut sched,
                &mut sink,
                1_000_000,
            )
            .is_err()
            {
                continue;
            }
            lockset_hits += usize::from(!lockset.races().is_empty());
            hb_hits += usize::from(!hb.races().is_empty());
            fine_keys.extend(lockset.races().iter().map(|r| r.static_key()));
        }
        println!("lockset  : race visible in {lockset_hits}/10 random schedules");
        println!("fasttrack: race visible in {hb_hits}/10 random schedules");

        fine_keys.sort();
        fine_keys.dedup();
        let mut confirmed = 0usize;
        for key in fine_keys.iter().take(5) {
            for trial in 0..5 {
                let mut machine = Machine::with_defaults(&prog, &mir);
                let mut sched = RaceFuzzerScheduler::new(*key, trial);
                let mut sink = narada::vm::NullSink;
                if execute_plan(
                    &mut machine,
                    &seeds,
                    &test.plan,
                    &mut sched,
                    &mut sink,
                    1_000_000,
                )
                .is_ok()
                    && !sched.confirmed.is_empty()
                {
                    confirmed += 1;
                    break;
                }
            }
        }
        println!(
            "racefuzzer: {confirmed}/{} candidate site-pairs reproduced",
            fine_keys.len().min(5)
        );
    }
}
