//! Property-based tests over core invariants:
//!
//! * arithmetic: the MJ VM agrees with a direct Rust evaluation oracle on
//!   arbitrary expression trees;
//! * pretty-printing: `compile → pretty → compile → pretty` is a fixpoint;
//! * vector clocks: `join` is a commutative, associative, idempotent
//!   least-upper-bound;
//! * detector soundness relation: on arbitrary valid interleavings, every
//!   happens-before race is also a lockset race (common-lock accesses are
//!   always HB-ordered, so FastTrack ⊆ Eraser).

use narada::detect::{DjitDetector, FastTrackDetector, LocksetDetector, VectorClock};
use narada::lang::lower::lower_program;
use narada::vm::{
    Event, EventKind, EventSink, FieldKey, InvId, Label, Machine, NullSink, ObjId, ThreadId,
    Value, VecSink,
};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Arithmetic oracle
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_mj(&self) -> String {
        match self {
            Expr::Lit(n) if *n < 0 => format!("(0 - {})", -(*n as i64)),
            Expr::Lit(n) => format!("{n}"),
            Expr::Add(a, b) => format!("({} + {})", a.to_mj(), b.to_mj()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_mj(), b.to_mj()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_mj(), b.to_mj()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Expr::Lit(n) => *n as i64,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-100i32..100).prop_map(Expr::Lit);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vm_arithmetic_matches_oracle(e in arb_expr()) {
        let src = format!(
            "class Out {{ int v; void go() {{ this.v = {}; }} }}\n\
             test t {{ var o = new Out(); o.go(); }}",
            e.to_mj()
        );
        let prog = narada::compile(&src).expect("generated program compiles");
        let mir = lower_program(&prog);
        let mut m = Machine::with_defaults(&prog, &mir);
        m.run_test(prog.tests[0].id, &mut NullSink).expect("runs");
        let out = prog.class_by_name("Out").unwrap();
        let v = prog.field_by_name(out, "v").unwrap();
        let obj = ObjId(0);
        prop_assert_eq!(m.heap.get_field(obj, v), Value::Int(e.eval()));
    }

    #[test]
    fn pretty_print_is_fixpoint(e in arb_expr()) {
        let src = format!(
            "class Out {{ int v; void go() {{ this.v = {}; }} }}\n\
             test t {{ var o = new Out(); o.go(); }}",
            e.to_mj()
        );
        let prog = narada::compile(&src).expect("compiles");
        let printed = narada::lang::pretty::program(&prog);
        let reprog = narada::compile(&printed).expect("pretty output recompiles");
        prop_assert_eq!(narada::lang::pretty::program(&reprog), printed);
    }

    #[test]
    fn vm_trace_is_deterministic(seed in any::<u64>()) {
        let src = r#"
            class R { int a; int b; void roll() { this.a = rand(); this.b = rand() % 17; } }
            test t { var r = new R(); r.roll(); r.roll(); }
        "#;
        let prog = narada::compile(src).unwrap();
        let mir = lower_program(&prog);
        let run = |s: u64| {
            let mut m = Machine::new(
                &prog,
                &mir,
                narada::vm::MachineOptions { seed: s, ..Default::default() },
            );
            let mut sink = VecSink::new();
            m.run_test(prog.tests[0].id, &mut sink).unwrap();
            sink.events.iter().filter_map(|e| match e.kind {
                EventKind::Write { value, .. } => Some(value),
                _ => None,
            }).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

// ----------------------------------------------------------------------
// Vector clock lattice laws
// ----------------------------------------------------------------------

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..40, 0..6).prop_map(|cs| {
        let mut vc = VectorClock::new();
        for (i, c) in cs.into_iter().enumerate() {
            vc.set(ThreadId(i as u32), c);
        }
        vc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vc_join_commutative(a in arb_vc(), b in arb_vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        for i in 0..8 {
            prop_assert_eq!(ab.get(ThreadId(i)), ba.get(ThreadId(i)));
        }
    }

    #[test]
    fn vc_join_associative(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for i in 0..8 {
            prop_assert_eq!(left.get(ThreadId(i)), right.get(ThreadId(i)));
        }
    }

    #[test]
    fn vc_join_is_upper_bound(a in arb_vc(), b in arb_vc()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        // And idempotent.
        let mut jj = j.clone();
        jj.join(&j.clone());
        for i in 0..8 {
            prop_assert_eq!(jj.get(ThreadId(i)), j.get(ThreadId(i)));
        }
    }

    #[test]
    fn vc_leq_antisymmetric(a in arb_vc(), b in arb_vc()) {
        if a.leq(&b) && b.leq(&a) {
            for i in 0..8 {
                prop_assert_eq!(a.get(ThreadId(i)), b.get(ThreadId(i)));
            }
        }
    }
}

// ----------------------------------------------------------------------
// FastTrack ⊆ Eraser on valid interleavings
// ----------------------------------------------------------------------

/// Per-thread operations; the interleaver below enforces lock exclusion.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lock(u8),
    Unlock,
    Read(u8),
    Write(u8),
}

fn arb_thread_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..2).prop_map(Op::Lock),
            Just(Op::Unlock),
            (0u8..3).prop_map(Op::Read),
            (0u8..3).prop_map(Op::Write),
        ],
        0..12,
    )
}

/// Simulates two threads' op lists under an interleaving choice sequence,
/// producing a *valid* event stream (locks exclusive, well-nested;
/// unmatched unlocks dropped).
fn interleave(threads: [&[Op]; 2], choices: &[bool]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut label = 0u64;
    let mut emit = |tid: u32, kind: EventKind| {
        events.push(Event {
            label: Label(label),
            tid: ThreadId(tid),
            span: narada::lang::Span::new(label as u32 * 2, label as u32 * 2 + 1),
            kind,
        });
        label += 1;
    };
    // Spawn both workers from main.
    emit(0, EventKind::ThreadSpawn { child: ThreadId(1) });
    emit(0, EventKind::ThreadSpawn { child: ThreadId(2) });

    let mut pc = [0usize; 2];
    let mut held: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
    let mut lock_owner: [Option<usize>; 2] = [None, None];
    let mut ci = 0usize;
    loop {
        // Pick a thread with work left whose next op is not blocked.
        let pick = |t: usize, pc: &[usize; 2], lock_owner: &[Option<usize>; 2]| -> bool {
            if pc[t] >= threads[t].len() {
                return false;
            }
            match threads[t][pc[t]] {
                Op::Lock(l) => lock_owner[l as usize].map(|o| o == t).unwrap_or(true),
                _ => true,
            }
        };
        let c0 = pick(0, &pc, &lock_owner);
        let c1 = pick(1, &pc, &lock_owner);
        let t = match (c0, c1) {
            (false, false) => break,
            (true, false) => 0,
            (false, true) => 1,
            (true, true) => {
                let choice = choices.get(ci).copied().unwrap_or(false);
                ci += 1;
                usize::from(choice)
            }
        };
        let tid = t as u32 + 1;
        let op = threads[t][pc[t]];
        pc[t] += 1;
        match op {
            Op::Lock(l) => {
                // Re-entrant acquisition is silent (matches the VM).
                if lock_owner[l as usize].is_none() {
                    lock_owner[l as usize] = Some(t);
                    emit(
                        tid,
                        EventKind::Lock {
                            inv: InvId(0),
                            var: None,
                            obj: ObjId(100 + l as u32),
                        },
                    );
                }
                held[t].push(l);
            }
            Op::Unlock => {
                if let Some(l) = held[t].pop() {
                    if !held[t].contains(&l) {
                        lock_owner[l as usize] = None;
                        emit(
                            tid,
                            EventKind::Unlock {
                                inv: InvId(0),
                                obj: ObjId(100 + l as u32),
                            },
                        );
                    }
                }
            }
            Op::Read(x) => emit(
                tid,
                EventKind::Read {
                    inv: InvId(0),
                    dst: narada::lang::mir::VarId(0),
                    obj_var: narada::lang::mir::VarId(0),
                    obj: ObjId(x as u32),
                    field: FieldKey::Elem(0),
                    value: Value::Int(0),
                },
            ),
            Op::Write(x) => emit(
                tid,
                EventKind::Write {
                    inv: InvId(0),
                    obj_var: narada::lang::mir::VarId(0),
                    obj: ObjId(x as u32),
                    field: FieldKey::Elem(0),
                    src_var: narada::lang::mir::VarId(1),
                    value: Value::Int(0),
                },
            ),
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fasttrack_within_djit(
        t1 in arb_thread_ops(),
        t2 in arb_thread_ops(),
        choices in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        // FastTrack is an optimization of Djit+'s full vector clocks that
        // deliberately reports *fewer race instances* (it resets the read
        // set after a write). The precise relationship, asserted here:
        // every FastTrack race is a Djit+ race, and both agree on WHICH
        // LOCATIONS are racy.
        let events = interleave([&t1, &t2], &choices);
        let mut ft = FastTrackDetector::new();
        let mut dj = DjitDetector::new();
        for ev in &events {
            ft.event(ev);
            dj.event(ev);
        }
        let ft_keys: std::collections::BTreeSet<_> =
            ft.races().iter().map(|r| r.static_key()).collect();
        let dj_keys: std::collections::BTreeSet<_> =
            dj.races().iter().map(|r| r.static_key()).collect();
        prop_assert!(
            ft_keys.is_subset(&dj_keys),
            "fasttrack races must be djit races: {:?} vs {:?}",
            ft_keys, dj_keys
        );
        let ft_locs: std::collections::BTreeSet<_> =
            ft.races().iter().map(|r| (r.obj, r.field)).collect();
        let dj_locs: std::collections::BTreeSet<_> =
            dj.races().iter().map(|r| (r.obj, r.field)).collect();
        prop_assert_eq!(ft_locs, dj_locs, "racy locations must agree");
    }

    #[test]
    fn fasttrack_races_are_lockset_races(
        t1 in arb_thread_ops(),
        t2 in arb_thread_ops(),
        choices in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let events = interleave([&t1, &t2], &choices);
        let mut lockset = LocksetDetector::new();
        let mut hb = FastTrackDetector::new();
        for ev in &events {
            lockset.event(ev);
            hb.event(ev);
        }
        // Two accesses ordered only by a common lock are never an HB race,
        // so every FastTrack race must also violate the lockset discipline.
        let eraser_keys: std::collections::HashSet<_> =
            lockset.races().iter().map(|r| r.static_key()).collect();
        for race in hb.races() {
            prop_assert!(
                eraser_keys.contains(&race.static_key()),
                "HB race {:?} missed by lockset (events: {:?})",
                race,
                events.len()
            );
        }
    }
}

// ----------------------------------------------------------------------
// Front-end robustness
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The front end must never panic: arbitrary byte soup either parses
    /// or produces diagnostics.
    #[test]
    fn compile_never_panics(src in "\\PC*") {
        let _ = narada::compile(&src);
    }

    /// Same for inputs built from MJ-ish tokens (much deeper parser
    /// penetration than raw soup).
    #[test]
    fn compile_never_panics_on_tokenish_input(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "class", "test", "sync", "init", "extends", "static",
                "if", "else", "while", "return", "var", "new", "this",
                "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "==",
                "+", "-", "*", "/", "%", "&&", "||", "!", "<", ">",
                "int", "bool", "void", "x", "y", "Foo", "m", "0", "42",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = narada::compile(&src);
    }
}
