//! Property-based tests over core invariants, driven by the workspace's
//! own deterministic [`SplitMix64`] generator (no external fuzzing deps):
//!
//! * arithmetic: the MJ VM agrees with a direct Rust evaluation oracle on
//!   arbitrary expression trees;
//! * pretty-printing: `compile → pretty → compile → pretty` is a fixpoint;
//! * vector clocks: `join` is a commutative, associative, idempotent
//!   least-upper-bound;
//! * detector soundness relation: on arbitrary valid interleavings, every
//!   happens-before race is also a lockset race (common-lock accesses are
//!   always HB-ordered, so FastTrack ⊆ Eraser);
//! * detector equivalence: FastTrack and Djit⁺ report the same racy
//!   locations on random traces — under BOTH the sequential and the
//!   work-sharded (`parallel_map`) trial runners, with identical results.
//!
//! Every case derives its seed as `derive_seed(PROPERTY_SEED, &[case])`,
//! so a failure message's case index reproduces the input exactly.

use narada::detect::{DjitDetector, FastTrackDetector, LocksetDetector, VectorClock};
use narada::lang::lower::lower_program;
use narada::vm::rng::{derive_seed, SplitMix64};
use narada::vm::{
    Event, EventKind, EventSink, FieldKey, InvId, Label, Machine, NullSink, ObjId, ThreadId, Value,
    VecSink,
};

const PROPERTY_SEED: u64 = 0x9a5a_da00;

/// Runs `body` for `n` independently-seeded cases. The case index is the
/// reproduction handle: re-running the test replays the same inputs.
fn cases(n: u64, mut body: impl FnMut(u64, &mut SplitMix64)) {
    for case in 0..n {
        let mut rng = SplitMix64::seed_from_u64(derive_seed(PROPERTY_SEED, &[case]));
        body(case, &mut rng);
    }
}

// ----------------------------------------------------------------------
// Arithmetic oracle
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Expr {
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_mj(&self) -> String {
        match self {
            Expr::Lit(n) if *n < 0 => format!("(0 - {})", -(*n as i64)),
            Expr::Lit(n) => format!("{n}"),
            Expr::Add(a, b) => format!("({} + {})", a.to_mj(), b.to_mj()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_mj(), b.to_mj()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_mj(), b.to_mj()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            Expr::Lit(n) => *n as i64,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
        }
    }
}

/// Random expression tree, depth-bounded; leaves get likelier with depth.
fn gen_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth >= 4 || rng.gen_range(0u32..4) == 0 {
        return Expr::Lit(rng.gen_range(-100i32..100));
    }
    let a = Box::new(gen_expr(rng, depth + 1));
    let b = Box::new(gen_expr(rng, depth + 1));
    match rng.gen_range(0u32..3) {
        0 => Expr::Add(a, b),
        1 => Expr::Sub(a, b),
        _ => Expr::Mul(a, b),
    }
}

#[test]
fn vm_arithmetic_matches_oracle() {
    cases(64, |case, rng| {
        let e = gen_expr(rng, 0);
        let src = format!(
            "class Out {{ int v; void go() {{ this.v = {}; }} }}\n\
             test t {{ var o = new Out(); o.go(); }}",
            e.to_mj()
        );
        let prog = narada::compile(&src).expect("generated program compiles");
        let mir = lower_program(&prog);
        let mut m = Machine::with_defaults(&prog, &mir);
        m.run_test(prog.tests[0].id, &mut NullSink).expect("runs");
        let out = prog.class_by_name("Out").unwrap();
        let v = prog.field_by_name(out, "v").unwrap();
        let obj = ObjId(0);
        assert_eq!(
            m.heap.get_field(obj, v),
            Value::Int(e.eval()),
            "case {case}: vm disagrees with oracle on {}",
            e.to_mj()
        );
    });
}

#[test]
fn pretty_print_is_fixpoint() {
    cases(64, |case, rng| {
        let e = gen_expr(rng, 0);
        let src = format!(
            "class Out {{ int v; void go() {{ this.v = {}; }} }}\n\
             test t {{ var o = new Out(); o.go(); }}",
            e.to_mj()
        );
        let prog = narada::compile(&src).expect("compiles");
        let printed = narada::lang::pretty::program(&prog);
        let reprog = narada::compile(&printed).expect("pretty output recompiles");
        assert_eq!(
            narada::lang::pretty::program(&reprog),
            printed,
            "case {case}: pretty-print not a fixpoint"
        );
    });
}

#[test]
fn vm_trace_is_deterministic() {
    cases(32, |case, rng| {
        let seed = rng.next_u64();
        let src = r#"
            class R { int a; int b; void roll() { this.a = rand(); this.b = rand() % 17; } }
            test t { var r = new R(); r.roll(); r.roll(); }
        "#;
        let prog = narada::compile(src).unwrap();
        let mir = lower_program(&prog);
        let run = |s: u64| {
            let mut m = Machine::new(
                &prog,
                &mir,
                narada::vm::MachineOptions {
                    seed: s,
                    ..Default::default()
                },
            );
            let mut sink = VecSink::new();
            m.run_test(prog.tests[0].id, &mut sink).unwrap();
            sink.events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Write { value, .. } => Some(value),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(seed), run(seed), "case {case}: seed {seed} diverged");
    });
}

// ----------------------------------------------------------------------
// Vector clock lattice laws
// ----------------------------------------------------------------------

fn gen_vc(rng: &mut SplitMix64) -> VectorClock {
    let mut vc = VectorClock::new();
    for i in 0..rng.gen_range(0usize..6) {
        vc.set(ThreadId(i as u32), rng.gen_range(0u32..40));
    }
    vc
}

#[test]
fn vc_join_commutative() {
    cases(128, |case, rng| {
        let (a, b) = (gen_vc(rng), gen_vc(rng));
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        for i in 0..8 {
            assert_eq!(ab.get(ThreadId(i)), ba.get(ThreadId(i)), "case {case}");
        }
    });
}

#[test]
fn vc_join_associative() {
    cases(128, |case, rng| {
        let (a, b, c) = (gen_vc(rng), gen_vc(rng), gen_vc(rng));
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        for i in 0..8 {
            assert_eq!(left.get(ThreadId(i)), right.get(ThreadId(i)), "case {case}");
        }
    });
}

#[test]
fn vc_join_is_upper_bound() {
    cases(128, |case, rng| {
        let (a, b) = (gen_vc(rng), gen_vc(rng));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j), "case {case}: a ≤ a⊔b");
        assert!(b.leq(&j), "case {case}: b ≤ a⊔b");
        // And idempotent.
        let mut jj = j.clone();
        jj.join(&j.clone());
        for i in 0..8 {
            assert_eq!(jj.get(ThreadId(i)), j.get(ThreadId(i)), "case {case}");
        }
    });
}

#[test]
fn vc_leq_antisymmetric() {
    cases(128, |case, rng| {
        let (a, b) = (gen_vc(rng), gen_vc(rng));
        if a.leq(&b) && b.leq(&a) {
            for i in 0..8 {
                assert_eq!(a.get(ThreadId(i)), b.get(ThreadId(i)), "case {case}");
            }
        }
    });
}

// ----------------------------------------------------------------------
// Detector relations on random valid interleavings
// ----------------------------------------------------------------------

/// Per-thread operations; the interleaver below enforces lock exclusion.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lock(u8),
    Unlock,
    Read(u8),
    Write(u8),
}

fn gen_thread_ops(rng: &mut SplitMix64) -> Vec<Op> {
    (0..rng.gen_range(0usize..12))
        .map(|_| match rng.gen_range(0u32..4) {
            0 => Op::Lock(rng.gen_range(0u8..2)),
            1 => Op::Unlock,
            2 => Op::Read(rng.gen_range(0u8..3)),
            _ => Op::Write(rng.gen_range(0u8..3)),
        })
        .collect()
}

fn gen_choices(rng: &mut SplitMix64) -> Vec<bool> {
    (0..rng.gen_range(0usize..40))
        .map(|_| rng.gen_bool(0.5))
        .collect()
}

/// Simulates two threads' op lists under an interleaving choice sequence,
/// producing a *valid* event stream (locks exclusive, well-nested;
/// unmatched unlocks dropped).
fn interleave(threads: [&[Op]; 2], choices: &[bool]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut label = 0u64;
    let mut emit = |tid: u32, kind: EventKind| {
        events.push(Event {
            label: Label(label),
            tid: ThreadId(tid),
            span: narada::lang::Span::new(label as u32 * 2, label as u32 * 2 + 1),
            kind,
        });
        label += 1;
    };
    // Spawn both workers from main.
    emit(0, EventKind::ThreadSpawn { child: ThreadId(1) });
    emit(0, EventKind::ThreadSpawn { child: ThreadId(2) });

    let mut pc = [0usize; 2];
    let mut held: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
    let mut lock_owner: [Option<usize>; 2] = [None, None];
    let mut ci = 0usize;
    loop {
        // Pick a thread with work left whose next op is not blocked.
        let pick = |t: usize, pc: &[usize; 2], lock_owner: &[Option<usize>; 2]| -> bool {
            if pc[t] >= threads[t].len() {
                return false;
            }
            match threads[t][pc[t]] {
                Op::Lock(l) => lock_owner[l as usize].map(|o| o == t).unwrap_or(true),
                _ => true,
            }
        };
        let c0 = pick(0, &pc, &lock_owner);
        let c1 = pick(1, &pc, &lock_owner);
        let t = match (c0, c1) {
            (false, false) => break,
            (true, false) => 0,
            (false, true) => 1,
            (true, true) => {
                let choice = choices.get(ci).copied().unwrap_or(false);
                ci += 1;
                usize::from(choice)
            }
        };
        let tid = t as u32 + 1;
        let op = threads[t][pc[t]];
        pc[t] += 1;
        match op {
            Op::Lock(l) => {
                // Re-entrant acquisition is silent (matches the VM).
                if lock_owner[l as usize].is_none() {
                    lock_owner[l as usize] = Some(t);
                    emit(
                        tid,
                        EventKind::Lock {
                            inv: InvId(0),
                            var: None,
                            obj: ObjId(100 + l as u32),
                        },
                    );
                }
                held[t].push(l);
            }
            Op::Unlock => {
                if let Some(l) = held[t].pop() {
                    if !held[t].contains(&l) {
                        lock_owner[l as usize] = None;
                        emit(
                            tid,
                            EventKind::Unlock {
                                inv: InvId(0),
                                obj: ObjId(100 + l as u32),
                            },
                        );
                    }
                }
            }
            Op::Read(x) => emit(
                tid,
                EventKind::Read {
                    inv: InvId(0),
                    dst: narada::lang::mir::VarId(0),
                    obj_var: narada::lang::mir::VarId(0),
                    obj: ObjId(x as u32),
                    field: FieldKey::Elem(0),
                    value: Value::Int(0),
                },
            ),
            Op::Write(x) => emit(
                tid,
                EventKind::Write {
                    inv: InvId(0),
                    obj_var: narada::lang::mir::VarId(0),
                    obj: ObjId(x as u32),
                    field: FieldKey::Elem(0),
                    src_var: narada::lang::mir::VarId(1),
                    value: Value::Int(0),
                },
            ),
        }
    }
    events
}

/// One random two-thread interleaving: the generator inputs for a
/// detector-comparison trial.
#[derive(Clone)]
struct TraceCase {
    t1: Vec<Op>,
    t2: Vec<Op>,
    choices: Vec<bool>,
}

impl TraceCase {
    fn gen(rng: &mut SplitMix64) -> TraceCase {
        TraceCase {
            t1: gen_thread_ops(rng),
            t2: gen_thread_ops(rng),
            choices: gen_choices(rng),
        }
    }

    fn events(&self) -> Vec<Event> {
        interleave([&self.t1, &self.t2], &self.choices)
    }
}

#[test]
fn fasttrack_within_djit() {
    cases(128, |case, rng| {
        // FastTrack is an optimization of Djit+'s full vector clocks that
        // deliberately reports *fewer race instances* (it resets the read
        // set after a write). The precise relationship, asserted here:
        // every FastTrack race is a Djit+ race, and both agree on WHICH
        // LOCATIONS are racy.
        let events = TraceCase::gen(rng).events();
        let mut ft = FastTrackDetector::new();
        let mut dj = DjitDetector::new();
        for ev in &events {
            ft.event(ev);
            dj.event(ev);
        }
        let ft_keys: std::collections::BTreeSet<_> =
            ft.races().iter().map(|r| r.static_key()).collect();
        let dj_keys: std::collections::BTreeSet<_> =
            dj.races().iter().map(|r| r.static_key()).collect();
        assert!(
            ft_keys.is_subset(&dj_keys),
            "case {case}: fasttrack races must be djit races: {:?} vs {:?}",
            ft_keys,
            dj_keys
        );
        let ft_locs: std::collections::BTreeSet<_> =
            ft.races().iter().map(|r| (r.obj, r.field)).collect();
        let dj_locs: std::collections::BTreeSet<_> =
            dj.races().iter().map(|r| (r.obj, r.field)).collect();
        assert_eq!(ft_locs, dj_locs, "case {case}: racy locations must agree");
    });
}

/// ISSUE satellite: FastTrack and Djit⁺ agree on the race set of random
/// MJ traces, and the *sharded* trial runner ([`narada::parallel_map`])
/// reproduces the sequential runner's verdicts byte-for-byte. A
/// divergence in the first comparison is a detector bug (FastTrack is an
/// optimization of Djit⁺); a divergence in the second is a determinism
/// bug in the work-sharding layer.
#[test]
fn fasttrack_djit_agree_under_sequential_and_sharded_runners() {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(PROPERTY_SEED, &[0xFA57]));
    let trace_cases: Vec<TraceCase> = (0..96).map(|_| TraceCase::gen(&mut rng)).collect();

    // The per-trace detector job: racy-location sets from both detectors.
    let verdict = |tc: &TraceCase| {
        let events = tc.events();
        let mut ft = FastTrackDetector::new();
        let mut dj = DjitDetector::new();
        for ev in &events {
            ft.event(ev);
            dj.event(ev);
        }
        let ft_locs: Vec<_> = {
            let set: std::collections::BTreeSet<_> =
                ft.races().iter().map(|r| (r.obj, r.field)).collect();
            set.into_iter().collect()
        };
        let dj_locs: Vec<_> = {
            let set: std::collections::BTreeSet<_> =
                dj.races().iter().map(|r| (r.obj, r.field)).collect();
            set.into_iter().collect()
        };
        (ft_locs, dj_locs)
    };

    // Sequential runner.
    let sequential: Vec<_> = trace_cases.iter().map(verdict).collect();
    for (i, (ft_locs, dj_locs)) in sequential.iter().enumerate() {
        assert_eq!(
            ft_locs, dj_locs,
            "trace {i}: FastTrack and Djit+ disagree on the race set"
        );
    }

    // Sharded runner: same jobs fanned out over the claiming queue, at
    // two worker counts; the merged result vector must be identical.
    for threads in [2usize, 4] {
        let sharded = narada::parallel_map(threads, &trace_cases, |_, tc| verdict(tc));
        assert_eq!(
            sharded, sequential,
            "sharded trial runner (threads={threads}) diverged from sequential verdicts"
        );
    }
}

#[test]
fn fasttrack_races_are_lockset_races() {
    cases(128, |case, rng| {
        let events = TraceCase::gen(rng).events();
        let mut lockset = LocksetDetector::new();
        let mut hb = FastTrackDetector::new();
        for ev in &events {
            lockset.event(ev);
            hb.event(ev);
        }
        // Two accesses ordered only by a common lock are never an HB race,
        // so every FastTrack race must also violate the lockset discipline.
        let eraser_keys: std::collections::HashSet<_> =
            lockset.races().iter().map(|r| r.static_key()).collect();
        for race in hb.races() {
            assert!(
                eraser_keys.contains(&race.static_key()),
                "case {case}: HB race {:?} missed by lockset ({} events)",
                race,
                events.len()
            );
        }
    });
}

// ----------------------------------------------------------------------
// Schedule record/replay round-trip
// ----------------------------------------------------------------------

/// Random racy MJ library: two methods doing 1–4 unsynchronized accesses
/// to shared state, so the pipeline synthesizes race-expecting tests.
fn gen_racy_program(rng: &mut SplitMix64) -> String {
    let body = |rng: &mut SplitMix64| -> String {
        (0..rng.gen_range(1usize..5))
            .map(|i| match rng.gen_range(0u32..4) {
                0 => "this.x = this.x + 1;".to_string(),
                1 => "this.y = rand();".to_string(),
                2 => format!("var t{i} = this.x; this.y = t{i};"),
                _ => format!("this.a[{}] = this.x;", rng.gen_range(0u32..3)),
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    let (m1, m2) = (body(rng), body(rng));
    format!(
        "class C {{ int x; int y; int[] a; init() {{ this.a = new int[4]; }}\n\
           void m1() {{ {m1} }}\n\
           void m2() {{ {m2} }} }}\n\
         test seed {{ var c = new C(); c.m1(); c.m2(); }}"
    )
}

/// ISSUE satellite: recording a concurrent run and replaying its schedule
/// on a fresh machine with the same seed reproduces the event trace
/// *byte-identically* — the invariant the `.sched` fixture suite rests on.
/// Exercised across random programs, random machine seeds, and all
/// scheduler families.
#[test]
fn record_replay_round_trips_event_traces() {
    use narada::core::execute_plan;
    use narada::vm::{trace_digest, MachineOptions, ReplayScheduler, ScheduleStrategy};
    cases(24, |case, rng| {
        let src = gen_racy_program(rng);
        let (prog, mir, out) =
            narada::synthesize_source(&src, &narada::SynthesisOptions::default())
                .expect("generated program compiles");
        let Some(test) = out.tests.iter().find(|t| t.plan.expects_race) else {
            return; // nothing synthesized for this shape — rare, fine
        };
        let strategy = match rng.gen_range(0u32..4) {
            0 => ScheduleStrategy::Random,
            1 => ScheduleStrategy::Sticky { stay_percent: 85 },
            2 => ScheduleStrategy::Pct { depth: 3 },
            _ => ScheduleStrategy::RoundRobin,
        };
        let machine_seed = rng.next_u64();
        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();

        // Record.
        let mut machine = Machine::new(
            &prog,
            &mir,
            MachineOptions {
                seed: machine_seed,
                ..Default::default()
            },
        );
        let mut sched = strategy.build(rng.next_u64(), 400);
        let mut recorded = VecSink::new();
        let (_, schedule) = narada::core::execute_plan_recorded(
            &mut machine,
            &seeds,
            &test.plan,
            &mut *sched,
            &mut recorded,
            2_000_000,
        )
        .expect("recorded run executes");
        assert_eq!(schedule.seed, machine_seed, "case {case}");

        // Replay on a fresh machine.
        let mut machine = Machine::new(
            &prog,
            &mir,
            MachineOptions {
                seed: machine_seed,
                ..Default::default()
            },
        );
        let mut replay = ReplayScheduler::from_schedule(&schedule);
        let mut replayed = VecSink::new();
        execute_plan(
            &mut machine,
            &seeds,
            &test.plan,
            &mut replay,
            &mut replayed,
            2_000_000,
        )
        .expect("replayed run executes");

        assert_eq!(
            replay.divergences(),
            0,
            "case {case} ({}): replay diverged from the recording",
            strategy.label()
        );
        assert_eq!(
            replayed.events,
            recorded.events,
            "case {case} ({}): replayed trace differs",
            strategy.label()
        );
        assert_eq!(
            trace_digest(&replayed.events),
            trace_digest(&recorded.events),
            "case {case}: digest oracle disagrees with event equality"
        );
    });
}

/// The demonstration recorder (the CLI's `synth --record`) is sharded over
/// the worker pool; its output — including every recorded schedule — must
/// be identical at any thread count, and every schedule it emits must
/// replay cleanly.
#[test]
fn demonstrations_are_thread_count_invariant_and_replayable() {
    use narada::core::{demonstrate, ExploreOptions};
    use narada::vm::ScheduleStrategy;
    let src = r#"
        class Counter { int count; void inc() { this.count = this.count + 1; } }
        class Lib {
            Counter c;
            sync void update() { this.c.inc(); }
            sync void set(Counter x) { this.c = x; }
        }
        test seed {
            var r = new Counter();
            var p = new Lib();
            p.set(r);
            p.update();
        }
    "#;
    let (prog, mir, out) =
        narada::synthesize_source(src, &narada::SynthesisOptions::default()).unwrap();
    for strategy in [ScheduleStrategy::Random, ScheduleStrategy::Pct { depth: 3 }] {
        let explore = |threads: usize| ExploreOptions {
            strategy: strategy.clone(),
            threads,
            ..ExploreOptions::default()
        };
        let sequential = demonstrate(&prog, &mir, &out, &explore(1));
        assert!(
            !sequential.is_empty(),
            "{}: no demonstrations",
            strategy.label()
        );
        for threads in [2usize, 4] {
            let sharded = demonstrate(&prog, &mir, &out, &explore(threads));
            let key = |ds: &[narada::core::Demonstration]| -> Vec<_> {
                ds.iter()
                    .map(|d| (d.test_index, d.schedule.clone()))
                    .collect()
            };
            assert_eq!(
                key(&sharded),
                key(&sequential),
                "{}: demonstrations differ at threads={threads}",
                strategy.label()
            );
        }
        // Every recorded schedule replays without divergence — on both
        // execution engines, with the same trace digest.
        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
        for d in &sequential {
            let replay = |engine| {
                narada::detect::replay_schedule(
                    &prog,
                    &mir,
                    &seeds,
                    &out.tests[d.test_index].plan,
                    2_000_000,
                    &d.schedule,
                    engine,
                )
                .expect("replay executes")
            };
            let tree = replay(narada::vm::Engine::TreeWalk);
            let bc = replay(narada::vm::Engine::Bytecode);
            assert_eq!(
                tree.divergences,
                0,
                "{}: demonstration for plan {} does not replay",
                strategy.label(),
                d.test_index
            );
            assert_eq!(bc.divergences, 0, "bytecode replay diverged");
            assert_eq!(
                tree.trace_digest,
                bc.trace_digest,
                "{}: engines disagree on the replayed trace of plan {}",
                strategy.label(),
                d.test_index
            );
            assert_eq!(tree.keys, bc.keys, "race keys differ across engines");
        }
    }
}

// ----------------------------------------------------------------------
// Front-end robustness
// ----------------------------------------------------------------------

/// The front end must never panic: arbitrary char soup either parses or
/// produces diagnostics.
#[test]
fn compile_never_panics() {
    cases(256, |_case, rng| {
        let len = rng.gen_range(0usize..80);
        let src: String = (0..len)
            .map(|_| {
                // Bias toward ASCII (parser-relevant) with some multi-byte
                // chars mixed in to stress span arithmetic.
                match rng.gen_range(0u32..8) {
                    0 => char::from_u32(rng.gen_range(0x80u32..0x2000)).unwrap_or('\u{fffd}'),
                    _ => rng.gen_range(0x20u8..0x7f) as char,
                }
            })
            .collect();
        let _ = narada::compile(&src);
    });
}

/// Same, on inputs built from MJ-ish tokens (much deeper parser
/// penetration than raw soup).
#[test]
fn compile_never_panics_on_tokenish_input() {
    const WORDS: &[&str] = &[
        "class", "test", "sync", "init", "extends", "static", "if", "else", "while", "return",
        "var", "new", "this", "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "==", "+", "-",
        "*", "/", "%", "&&", "||", "!", "<", ">", "int", "bool", "void", "x", "y", "Foo", "m", "0",
        "42",
    ];
    cases(256, |_case, rng| {
        let n = rng.gen_range(0usize..60);
        let src = (0..n)
            .map(|_| WORDS[rng.gen_range(0usize..WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = narada::compile(&src);
    });
}

// ----------------------------------------------------------------------
// Static screening
// ----------------------------------------------------------------------

/// ISSUE satellite: screener/scheduler agreement. A `MustNotRace`
/// verdict promises that *no* synthesized context manifests the race, so
/// a pair whose covering test dynamically reproduces a confirmed race
/// must have been ranked `MayRace`. Runs the lock-heavy classes C2 and
/// C3 by default (where the screener actually discharges pairs); set
/// `NARADA_AGREEMENT_FULL=1` to sweep C1–C5, the paper's evaluation
/// prefix.
#[test]
fn screener_agreement() {
    use narada::detect::{evaluate_test_indexed, DetectConfig};

    let ids: &[&str] = if std::env::var("NARADA_AGREEMENT_FULL").is_ok() {
        &["C1", "C2", "C3", "C4", "C5"]
    } else {
        &["C2", "C3"]
    };
    let cfg = DetectConfig {
        schedule_trials: 6,
        confirm_trials: 4,
        seed: 42,
        ..DetectConfig::default()
    };
    let mut discharged = 0usize;
    let mut manifested = 0usize;
    for id in ids {
        let e = narada::corpus::by_id(id).expect("known id");
        let prog = e.compile().expect("corpus compiles");
        let mir = lower_program(&prog);
        // Rank, don't filter: every generated pair still gets a derived
        // plan, so a wrong `MustNotRace` verdict can be caught in the act.
        let opts = narada::SynthesisOptions {
            static_rank: true,
            ..narada::SynthesisOptions::default()
        };
        let out = narada::synthesize_with(&prog, &mir, &opts, Some(&narada::screen_pairs));
        let verdicts = out.verdicts.as_deref().expect("ranking stores verdicts");
        discharged += verdicts.iter().filter(|v| !v.may_race()).count();
        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
        for (ti, t) in out.tests.iter().enumerate() {
            let report = evaluate_test_indexed(&prog, &mir, &seeds, &t.plan, &cfg, ti as u64);
            for (_, race) in &report.reproduced {
                manifested += 1;
                let v = out.static_verdict_for(ti, race.key.span_a, race.key.span_b);
                if let Some(narada::StaticVerdict::MustNotRace { reason }) = v {
                    panic!(
                        "{id}: pair {} discharged ({reason}) but test {ti} \
                         reproduced it under the scheduler",
                        race.key
                    );
                }
            }
        }
    }
    // The property is vacuous unless both sides actually fire.
    assert!(discharged > 0, "screener discharged nothing on {ids:?}");
    assert!(manifested > 0, "scheduler reproduced nothing on {ids:?}");
}

// ----------------------------------------------------------------------
// Engine equivalence across the pipeline
// ----------------------------------------------------------------------

/// The bytecode engine drives the full differential pipeline — generated
/// lattice classes through synthesis, detection, and confirmation — to
/// byte-identical results: same sweep digest as the tree-walk reference,
/// same per-class race reports, at every worker count. Runs a 16-class
/// slice by default; set `NARADA_ENGINE_FULL=1` (CI's release leg) for
/// the 64-class slice at threads 1, 2, and 8.
#[test]
fn engine_equivalence_on_difftest_lattice() {
    use narada::difftest::{run_sweep, DiffConfig, SweepReport};
    use narada::vm::Engine;
    use narada::Obs;

    let full = std::env::var("NARADA_ENGINE_FULL").is_ok();
    let count = if full { 64 } else { 16 };
    let thread_counts: &[usize] = if full { &[1, 2, 8] } else { &[1, 2] };
    let cfg = |engine, threads| DiffConfig {
        seed: 0xe9e9,
        count,
        threads,
        schedule_trials: 4,
        confirm_trials: 3,
        engine,
        ..DiffConfig::default()
    };
    let fingerprint = |s: &SweepReport| -> (u64, usize, usize, Vec<String>) {
        (
            s.digest,
            s.discharged(),
            s.confirmed(),
            s.reports.iter().map(|r| r.summary()).collect(),
        )
    };

    let reference = fingerprint(&run_sweep(&cfg(Engine::TreeWalk, 1), &Obs::new()));
    assert!(reference.2 > 0, "vacuous slice: nothing confirmed");
    for &threads in thread_counts {
        let bc = fingerprint(&run_sweep(&cfg(Engine::Bytecode, threads), &Obs::new()));
        assert_eq!(
            reference, bc,
            "bytecode sweep diverged from tree-walk at threads={threads}"
        );
    }
}
