//! Golden replay of the committed `.sched` fixtures: every minimized racy
//! schedule under `tests/fixtures/` must re-manifest its race
//! deterministically — byte-identical trace, zero schedule divergence —
//! and the directed confirmer must reproduce the recorded verdict.
//!
//! Fixtures are produced by `narada corpus <ID> --record tests/fixtures`
//! (detection → RaceFuzzer confirmation → ddmin minimization). A failure
//! here means the VM, the synthesizer, or a detector changed semantics in
//! a way that breaks replayability of recorded races.

use narada::core::execute_plan_fresh;
use narada::detect::{replay_schedule, RaceFuzzerScheduler, StaticRaceKey};
use narada::lang::hir::Program;
use narada::lang::lower::lower_program;
use narada::lang::mir::MirProgram;
use narada::vm::{Engine, MachineOptions, Schedule};
use narada::{synthesize, SynthesisOptions, SynthesisOutput};
use std::collections::HashMap;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixtures() -> Vec<(String, Schedule)> {
    let mut fixtures: Vec<(String, Schedule)> = std::fs::read_dir(fixture_dir())
        .expect("tests/fixtures exists")
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension()? != "sched" {
                return None;
            }
            let text = std::fs::read_to_string(&path).ok()?;
            let name = path.file_name()?.to_string_lossy().into_owned();
            let sched = Schedule::parse(&text)
                .unwrap_or_else(|err| panic!("{name}: unparseable fixture: {err}"));
            Some((name, sched))
        })
        .collect();
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        fixtures.len() >= 4,
        "expected the committed C1/C5 fixture set, found {}",
        fixtures.len()
    );
    fixtures
}

/// Re-synthesizes the suite a fixture was recorded against (cached per
/// corpus class: synthesis is deterministic).
struct Suites(HashMap<String, (Program, MirProgram, SynthesisOutput)>);

impl Suites {
    fn get(&mut self, class: &str) -> &(Program, MirProgram, SynthesisOutput) {
        self.0.entry(class.to_string()).or_insert_with(|| {
            let entry = narada::corpus::by_id(&class.to_uppercase())
                .unwrap_or_else(|| panic!("fixture names unknown corpus class `{class}`"));
            let prog = entry.compile().expect("corpus class compiles");
            let mir = lower_program(&prog);
            let out = synthesize(&prog, &mir, &SynthesisOptions::default());
            (prog, mir, out)
        })
    }
}

#[test]
fn fixtures_replay_byte_identically() {
    let mut suites = Suites(HashMap::new());
    for (name, sched) in load_fixtures() {
        let class = sched
            .meta_get("class")
            .unwrap_or_else(|| panic!("{name}: missing `class` metadata"))
            .to_string();
        let (prog, mir, out) = suites.get(&class);
        let index: usize = sched
            .meta_get("plan-index")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name}: missing `plan-index`"));
        let test = &out.tests[index];
        assert_eq!(
            sched.meta_get("plan").expect("plan key recorded"),
            test.plan.dedup_key(),
            "{name}: synthesized plan {index} drifted from the recording"
        );

        let target = StaticRaceKey::parse_meta(sched.meta_get("target").expect("target recorded"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
        let want = u64::from_str_radix(
            sched
                .meta_get("trace-digest")
                .expect("digest recorded")
                .trim_start_matches("0x"),
            16,
        )
        .expect("digest parses");

        // Every fixture must replay byte-identically on *both* engines —
        // the recording carries no engine dependence, only semantics.
        for engine in [Engine::TreeWalk, Engine::Bytecode] {
            let outcome = replay_schedule(prog, mir, &seeds, &test.plan, 2_000_000, &sched, engine)
                .unwrap_or_else(|e| panic!("{name} [{engine}]: replay setup failed: {e}"));
            assert_eq!(
                outcome.divergences, 0,
                "{name} [{engine}]: replay left the recording"
            );
            assert!(
                outcome.manifests(&target),
                "{name} [{engine}]: target race {target} did not re-manifest (got {:?})",
                outcome.keys
            );
            assert_eq!(
                outcome.trace_digest, want,
                "{name} [{engine}]: replayed trace is not byte-identical to the recording"
            );
        }
    }
}

#[test]
fn fixtures_reproduce_recorded_verdicts() {
    let mut suites = Suites(HashMap::new());
    for (name, sched) in load_fixtures() {
        let class = sched.meta_get("class").expect("class recorded").to_string();
        let (prog, mir, out) = suites.get(&class);
        let index: usize = sched.meta_get("plan-index").unwrap().parse().unwrap();
        let test = &out.tests[index];
        let target =
            StaticRaceKey::parse_meta(sched.meta_get("target").unwrap()).expect("target parses");
        let sched_seed = u64::from_str_radix(
            sched
                .meta_get("sched-seed")
                .expect("confirmation seed recorded")
                .trim_start_matches("0x"),
            16,
        )
        .expect("seed parses");

        // Re-run the directed confirmation with the recorded seeds on
        // both engines: the same race must confirm with the same
        // harmful/benign verdict either way.
        for engine in [Engine::TreeWalk, Engine::Bytecode] {
            let mut fuzzer = RaceFuzzerScheduler::new(target, sched_seed);
            let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
            execute_plan_fresh(
                prog,
                mir,
                &seeds,
                &test.plan,
                &mut fuzzer,
                &mut narada::vm::NullSink,
                MachineOptions {
                    seed: sched.seed,
                    engine,
                    ..MachineOptions::default()
                },
                2_000_000,
            )
            .unwrap_or_else(|e| panic!("{name} [{engine}]: confirmation setup failed: {e}"));
            let confirmed = fuzzer
                .confirmed
                .iter()
                .find(|c| c.key == target)
                .unwrap_or_else(|| panic!("{name} [{engine}]: race {target} no longer confirms"));
            let want_benign = sched.meta_get("verdict") == Some("benign");
            assert_eq!(
                confirmed.benign, want_benign,
                "{name} [{engine}]: detector verdict flipped vs the recorded report"
            );
            assert_eq!(confirmed.machine_seed, sched.seed, "{name}: seed stamping");
            assert_eq!(confirmed.sched_seed, sched_seed, "{name}: seed stamping");
        }
    }
}
