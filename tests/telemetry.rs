//! Telemetry invariants across the full pipeline: the run manifest's
//! metric section must be byte-identical regardless of worker-thread
//! count, traces must form a well-shaped span tree, and manifests must
//! survive a serialize/parse round trip.

use narada::detect::DetectConfig;
use narada::lang::lower::lower_program;
use narada::obs::Json;
use narada::{
    evaluate_suite_observed, screen_pairs, synthesize_observed, Obs, RunManifest, SynthesisOptions,
};

/// Runs synthesis + detection over a small corpus class with the given
/// worker-thread count and returns the populated observability context.
fn run_pipeline(threads: usize) -> Obs {
    let entry = narada::corpus::c9();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let obs = Obs::new();
    let opts = SynthesisOptions {
        threads,
        ..SynthesisOptions::default()
    };
    let out = synthesize_observed(&prog, &mir, &opts, Some(&screen_pairs), &obs);
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let cfg = DetectConfig {
        schedule_trials: 3,
        confirm_trials: 2,
        seed: 0xdead,
        budget: 1_000_000,
        threads,
        ..DetectConfig::default()
    };
    evaluate_suite_observed(&prog, &mir, &seeds, &plans, &cfg, &obs);
    obs
}

#[test]
fn manifest_metrics_identical_across_thread_counts() {
    let baseline = RunManifest::from_obs("t", 1, &run_pipeline(1))
        .metrics_json()
        .to_compact();
    assert!(
        baseline.contains("pairs.generated"),
        "pipeline must populate the registry: {baseline}"
    );
    assert!(baseline.contains("detect.trials"), "{baseline}");
    for threads in [2, 8] {
        let got = RunManifest::from_obs("t", threads as u64, &run_pipeline(threads))
            .metrics_json()
            .to_compact();
        assert_eq!(
            baseline, got,
            "metric section must not depend on worker count (threads={threads})"
        );
    }
}

/// Like [`run_pipeline`] but with a directed (PCT) exploration strategy
/// and the static screener ranking pass on, so all three coverage
/// counters — `explore.change_points_probed`, `explore.schedule_novelty`,
/// `screen.pair_coverage` — accumulate non-trivial values.
fn run_coverage_pipeline(threads: usize) -> Obs {
    let entry = narada::corpus::c9();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let obs = Obs::new();
    let opts = SynthesisOptions {
        threads,
        static_rank: true,
        ..SynthesisOptions::default()
    };
    let out = synthesize_observed(&prog, &mir, &opts, Some(&screen_pairs), &obs);
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let cfg = DetectConfig {
        schedule_trials: 3,
        confirm_trials: 2,
        seed: 0xdead,
        budget: 1_000_000,
        threads,
        strategy: narada::vm::ScheduleStrategy::Pct { depth: 3 },
        pct_horizon: 200,
        ..DetectConfig::default()
    };
    evaluate_suite_observed(&prog, &mir, &seeds, &plans, &cfg, &obs);
    obs
}

#[test]
fn exploration_coverage_counters_are_thread_invariant() {
    let baseline = RunManifest::from_obs("cov", 1, &run_coverage_pipeline(1));
    let scalar = |m: &RunManifest, key: &str| -> u64 {
        match m.metric(key) {
            Some(narada::obs::MetricValue::Counter(n)) => *n,
            other => panic!("{key} must be a counter, got {other:?}"),
        }
    };
    // PCT with depth 3 over a short horizon consumes change points; every
    // trial manifests a schedule; the ranking pass screened every pair.
    assert!(
        scalar(&baseline, "explore.change_points_probed") > 0,
        "directed trials must consume change points"
    );
    assert!(
        scalar(&baseline, "explore.schedule_novelty") > 0,
        "trials must manifest at least one distinct schedule"
    );
    assert!(
        scalar(&baseline, "screen.pair_coverage") > 0,
        "the ranking screener covers every generated pair"
    );
    let base_metrics = baseline.metrics_json().to_compact();
    for threads in [2, 8] {
        let got = RunManifest::from_obs("cov", 1, &run_coverage_pipeline(threads))
            .metrics_json()
            .to_compact();
        assert_eq!(
            base_metrics, got,
            "coverage counters must not depend on worker count (threads={threads})"
        );
    }
}

#[test]
fn manifest_survives_round_trip() {
    let obs = run_pipeline(1);
    let mut m = RunManifest::from_obs("round-trip", 1, &obs);
    m.set_config("strategy", "pct");
    let text = m.to_pretty();
    let back = RunManifest::parse(&text).expect("parses back");
    assert_eq!(m.to_json().to_compact(), back.to_json().to_compact());
    assert_eq!(back.config_get("strategy"), Some("pct"));
    assert_eq!(back.metric("pairs.generated"), m.metric("pairs.generated"));
}

const FIXTURE: &str = r#"
    class Counter { int count; void inc() { this.count = this.count + 1; } }
    class Lib {
        Counter c;
        sync void update() { this.c.inc(); }
        sync void set(Counter x) { this.c = x; }
    }
    test seed {
        var r = new Counter();
        var p = new Lib();
        p.set(r);
        p.update();
    }
"#;

/// Golden trace shape: at one worker thread the synthesis trace is fully
/// deterministic — fixed span names in a fixed order, with every stage
/// parented under the pipeline root and every derive job under its stage.
#[test]
fn trace_spans_form_the_expected_tree() {
    let prog = narada::compile(FIXTURE).expect("fixture compiles");
    let mir = lower_program(&prog);
    let obs = Obs::with_tracing();
    let opts = SynthesisOptions {
        threads: 1,
        static_filter: true,
        ..SynthesisOptions::default()
    };
    synthesize_observed(&prog, &mir, &opts, Some(&screen_pairs), &obs);

    let jsonl = obs.tracer.to_jsonl();
    let spans: Vec<Json> = jsonl
        .lines()
        .map(|l| Json::parse(l).expect("every trace line is valid JSON"))
        .collect();
    assert!(!spans.is_empty());

    let name = |s: &Json| s.get("name").and_then(Json::as_str).unwrap().to_string();
    let id = |s: &Json| s.get("id").and_then(Json::as_i64).unwrap();
    let parent = |s: &Json| s.get("parent").and_then(Json::as_i64);

    // Every span carries monotone timing and a thread ordinal.
    for s in &spans {
        let start = s.get("start_ns").and_then(Json::as_i64).unwrap();
        let end = s.get("end_ns").and_then(Json::as_i64).unwrap();
        assert!(end >= start, "span {} ends before it starts", name(s));
        assert!(s.get("thread").is_some());
    }

    let root = spans
        .iter()
        .find(|s| name(s) == "pipeline.synthesize")
        .expect("root span present");
    assert_eq!(parent(root), None, "pipeline root has no parent");
    let root_id = id(root);

    // The five synthesis stages appear exactly once each, under the root.
    for stage in [
        "stage.trace",
        "stage.analyze",
        "stage.pairs",
        "stage.screen",
        "stage.derive",
    ] {
        let hits: Vec<_> = spans.iter().filter(|s| name(s) == stage).collect();
        assert_eq!(hits.len(), 1, "{stage} must appear exactly once");
        assert_eq!(parent(hits[0]), Some(root_id), "{stage} parented to root");
    }

    // Leaf jobs hang off their stage, never off the root.
    let derive_id = spans.iter().find(|s| name(s) == "stage.derive").map(id);
    let trace_id = spans.iter().find(|s| name(s) == "stage.trace").map(id);
    for s in &spans {
        match name(s).as_str() {
            "derive.pair" => assert_eq!(parent(s), derive_id),
            "seed.run" => assert_eq!(parent(s), trace_id),
            _ => {}
        }
    }
    assert!(
        spans.iter().any(|s| name(s) == "derive.pair"),
        "derive jobs traced"
    );
    assert!(
        spans.iter().any(|s| name(s) == "seed.run"),
        "seed runs traced"
    );
}
