//! Tests for the `narada` command-line driver.

use std::process::Command;

fn narada(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_narada"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_fixture(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("narada-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

const FIXTURE: &str = r#"
    class Counter { int count; void inc() { this.count = this.count + 1; } }
    class Lib {
        Counter c;
        sync void update() { this.c.inc(); }
        sync void set(Counter x) { this.c = x; }
    }
    test seed {
        var r = new Counter();
        var p = new Lib();
        p.set(r);
        p.update();
    }
"#;

#[test]
fn no_args_prints_usage_and_fails() {
    let out = narada(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = narada(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("synth"));
}

#[test]
fn run_executes_seed_tests() {
    let path = write_fixture("run.mj", FIXTURE);
    let out = narada(&["run", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("test seed: ok"), "{stdout}");
}

#[test]
fn run_reports_failures_without_crashing() {
    let path = write_fixture("fail.mj", "test boom { assert false; }");
    let out = narada(&["run", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("assertion failed"), "{stdout}");
}

#[test]
fn mir_dumps_instructions() {
    let path = write_fixture("mir.mj", FIXTURE);
    let out = narada(&["mir", path.to_str().unwrap(), "--method", "Lib.update"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock(this)"), "{stdout}");
    assert!(stdout.contains("I_this"), "{stdout}");
}

#[test]
fn synth_renders_plans() {
    let path = write_fixture("synth.mj", FIXTURE);
    let out = narada(&["synth", path.to_str().unwrap(), "--render"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("racing pairs"), "{stdout}");
    assert!(stdout.contains("collectObjects"), "{stdout}");
    assert!(stdout.contains("spawn"), "{stdout}");
}

#[test]
fn detect_reports_races() {
    let path = write_fixture("detect.mj", FIXTURE);
    let out = narada(&[
        "detect",
        path.to_str().unwrap(),
        "--schedules",
        "6",
        "--confirms",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("races detected"), "{stdout}");
    // Fig. 1's count race must be found and be harmful.
    assert!(
        !stdout.contains("0 races detected"),
        "the Fig. 1 race must be detected: {stdout}"
    );
}

#[test]
fn compile_errors_are_rendered_with_positions() {
    let path = write_fixture("bad.mj", "test t { var x = 1 + true; }");
    let out = narada(&["synth", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("type error"), "{stderr}");
    assert!(stderr.contains("1:"), "positions rendered: {stderr}");
}

#[test]
fn unknown_command_fails() {
    let out = narada(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn corpus_single_entry() {
    let out = narada(&["corpus", "C9"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CharArrayReader"), "{stdout}");
    assert!(stdout.contains("paper:"), "{stdout}");
}

#[test]
fn synth_writes_trace_and_manifest() {
    let path = write_fixture("telemetry.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let trace = dir.join("trace.jsonl");
    let manifest = dir.join("manifest.json");
    let out = narada(&[
        "synth",
        path.to_str().unwrap(),
        "--threads",
        "1",
        "--trace-out",
        trace.to_str().unwrap(),
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every trace line is a JSON object naming a span.
    let jsonl = std::fs::read_to_string(&trace).unwrap();
    assert!(jsonl.lines().count() > 1, "{jsonl}");
    for line in jsonl.lines() {
        let span = narada::obs::Json::parse(line).expect("valid JSONL line");
        assert!(span.get("name").is_some(), "{line}");
    }

    // The manifest parses back and carries the pipeline's counters.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let m = narada::RunManifest::parse(&text).expect("manifest parses");
    assert!(m.metric("pairs.generated").is_some());
    assert!(m.config_get("strategy").is_some(), "strategy stamped");
}

#[test]
fn report_renders_and_diffs_manifests() {
    let path = write_fixture("report.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let a = dir.join("report-a.json");
    let b = dir.join("report-b.json");
    for m in [&a, &b] {
        let out = narada(&[
            "synth",
            path.to_str().unwrap(),
            "--manifest",
            m.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }
    let out = narada(&["report", a.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pairs.generated"), "{stdout}");

    let out = narada(&["report", "--diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Identical pipelines → every metric matches.
    assert!(stdout.contains("metrics identical"), "{stdout}");
}

#[test]
fn report_rejects_invalid_manifest() {
    let path = write_fixture("not-a-manifest.json", "{\"schema\": \"nope\"}");
    let out = narada(&["report", path.to_str().unwrap()]);
    assert!(!out.status.success());
}

/// Inflates the first integer value following `key` in a manifest's JSON
/// text — the fault-injection half of the trend-gate tests.
fn inflate_metric(text: &str, key: &str) -> String {
    let at = text
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("`{key}` not in manifest"));
    let digits_start = at
        + text[at..]
            .find(|c: char| c.is_ascii_digit())
            .expect("metric has a numeric value");
    let digits_end = digits_start
        + text[digits_start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(text.len() - digits_start);
    format!("{}999999{}", &text[..digits_start], &text[digits_end..])
}

#[test]
fn report_trend_passes_identical_runs_and_exits_4_on_regression() {
    let path = write_fixture("trend.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let a = dir.join("trend-a.json");
    let b = dir.join("trend-b.json");
    for m in [&a, &b] {
        let out = narada(&[
            "synth",
            path.to_str().unwrap(),
            "--manifest",
            m.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }

    // Identical pipelines: every deterministic metric matches, wall-clock
    // rows are informational — the gate passes at zero tolerance.
    let out = narada(&[
        "report",
        "--trend",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 breach(es)"), "{stdout}");

    // Inject a count regression into the current run: the gate must trip
    // through the dedicated exit code.
    let text = std::fs::read_to_string(&b).unwrap();
    let bad = write_fixture("trend-bad.json", &inflate_metric(&text, "pairs.generated"));
    let out = narada(&[
        "report",
        "--trend",
        a.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("!!"), "breach flagged: {stdout}");
    assert!(stdout.contains("pairs.generated"), "{stdout}");

    // A singleton group cannot be trended.
    let out = narada(&["report", "--trend", a.to_str().unwrap(), "--tolerance", "0"]);
    assert!(!out.status.success());
}

#[test]
fn top_once_reports_cold_and_warm_quantiles_from_a_live_daemon() {
    let dir = std::env::temp_dir().join("narada-cli-tests/topd");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let port_file = dir.join("port");
    let mut server = Command::new(env!("CARGO_BIN_EXE_narada"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("server starts");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                break format!("127.0.0.1:{port}");
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never wrote its port file"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    // One cold and one warm job so both latency histograms have samples.
    let path = write_fixture("top.mj", FIXTURE);
    for _ in 0..2 {
        let out = narada(&[
            "submit",
            path.to_str().unwrap(),
            "--addr",
            &addr,
            "--schedules",
            "3",
            "--confirms",
            "2",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let submitted = String::from_utf8_lossy(&out.stdout);
        let job = submitted.trim().strip_prefix("job ").expect("job id");
        let out = narada(&["fetch", job, "--addr", &addr, "--wait", "--quiet"]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let out = narada(&["top", "--once", "--addr", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let frame = narada::obs::Json::parse(&stdout).expect("top --once prints one JSON object");
    let latency = frame.get("latency").expect("latency section");
    let count = |side: &str| {
        latency
            .get(side)
            .and_then(|n| n.get("count"))
            .and_then(narada::obs::Json::as_i64)
            .unwrap_or_else(|| panic!("latency.{side}.count: {stdout}"))
    };
    for side in ["cold", "warm"] {
        for key in ["p50", "p90", "p99"] {
            assert!(
                latency
                    .get(side)
                    .and_then(|n| n.get(key))
                    .and_then(narada::obs::Json::as_i64)
                    .is_some(),
                "latency.{side}.{key}: {stdout}"
            );
        }
    }
    assert_eq!(count("cold"), 1, "{stdout}");
    assert_eq!(count("warm"), 1, "resubmission classifies warm: {stdout}");

    let out = narada(&["shutdown", "--addr", &addr]);
    assert!(out.status.success());
    server.wait().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pairs_json_is_machine_readable() {
    let path = write_fixture("pairs.mj", FIXTURE);
    let out = narada(&["pairs", path.to_str().unwrap(), "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = narada::obs::Json::parse(&stdout).expect("pairs --json parses");
    let arr = doc.as_arr().expect("top-level array");
    assert!(!arr.is_empty());
    for pair in arr {
        assert!(
            pair.get("a").is_some() && pair.get("b").is_some(),
            "{stdout}"
        );
        assert!(pair.get("may_race").is_some(), "{stdout}");
    }
}

#[test]
fn missing_file_is_reported() {
    let out = narada(&["run", "/nonexistent/zzz.mj"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn report_diff_missing_manifest_fails() {
    let path = write_fixture("diff-present.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let present = dir.join("diff-present.json");
    let out = narada(&[
        "synth",
        path.to_str().unwrap(),
        "--manifest",
        present.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = narada(&[
        "report",
        "--diff",
        present.to_str().unwrap(),
        "/nonexistent/other.json",
    ]);
    assert!(!out.status.success(), "missing manifest must fail the diff");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn report_diff_schema_mismatch_fails() {
    let path = write_fixture("diff-schema.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let good = dir.join("diff-good.json");
    let out = narada(&[
        "synth",
        path.to_str().unwrap(),
        "--manifest",
        good.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // A structurally complete manifest from a different (future) schema
    // revision: only the version marker is wrong.
    let text = std::fs::read_to_string(&good).unwrap();
    let stale = write_fixture(
        "diff-stale.json",
        &text.replace("narada-manifest/1", "narada-manifest/999"),
    );

    let out = narada(&[
        "report",
        "--diff",
        good.to_str().unwrap(),
        stale.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "schema-mismatched manifest must fail the diff"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema"), "{stderr}");
}

#[test]
fn detect_manifest_records_gave_up() {
    let path = write_fixture("gaveup.mj", FIXTURE);
    let dir = std::env::temp_dir().join("narada-cli-tests");
    let manifest = dir.join("gaveup.json");
    let out = narada(&[
        "detect",
        path.to_str().unwrap(),
        "--schedules",
        "6",
        "--confirms",
        "4",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&manifest).unwrap();
    let m = narada::RunManifest::parse(&text).expect("manifest parses");
    assert!(
        m.metric("detect.gave_up").is_some(),
        "detect.gave_up must be surfaced alongside racefuzzer.gave_up"
    );
    assert!(m.metric("racefuzzer.gave_up").is_some());
}

#[test]
fn gen_emits_compilable_novel_suite() {
    let path = write_fixture("gen.mj", FIXTURE);
    let out = narada(&[
        "gen",
        path.to_str().unwrap(),
        "--budget",
        "128",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("test gen_"), "{stdout}");
    // The emitted suite is a complete MJ program: library + tests.
    let prog = narada::compile(&stdout).expect("generated suite compiles");
    assert!(!prog.tests.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("candidates"), "stats on stderr: {stderr}");
}

#[test]
fn gen_output_is_byte_identical_across_threads() {
    let path = write_fixture("gen-threads.mj", FIXTURE);
    let mut outs = Vec::new();
    for threads in ["1", "8"] {
        let out = narada(&[
            "gen",
            path.to_str().unwrap(),
            "--budget",
            "128",
            "--seed",
            "5",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outs.push(out.stdout);
    }
    assert_eq!(outs[0], outs[1], "gen output must not depend on --threads");
}

#[test]
fn synth_generate_seeds_replaces_manual_suite() {
    let path = write_fixture("gen-synth.mj", FIXTURE);
    let out = narada(&[
        "synth",
        path.to_str().unwrap(),
        "--generate-seeds",
        "--budget",
        "128",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("generated"), "{stdout}");
}

#[test]
fn difftest_happy_path_exits_zero() {
    let out = narada(&["difftest", "--count", "6", "--seed", "7", "--threads", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 soundness disagreement(s)"), "{stdout}");
    assert!(stdout.contains("digest="), "{stdout}");
}

#[test]
fn difftest_output_is_thread_count_independent() {
    let a = narada(&["difftest", "--count", "9", "--seed", "11", "--threads", "1"]);
    let b = narada(&["difftest", "--count", "9", "--seed", "11", "--threads", "8"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "difftest output must not depend on --threads"
    );
}

#[test]
fn difftest_disagreement_exits_with_code_3() {
    // --inject-unsound flips one verdict per class, so the sweep must
    // find disagreements and report them through the dedicated exit code.
    let out = narada(&[
        "difftest",
        "--count",
        "3",
        "--seed",
        "7",
        "--inject-unsound",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SOUNDNESS"), "{stdout}");
}

#[test]
fn difftest_shrink_writes_fixtures() {
    let dir = std::env::temp_dir().join("narada-cli-tests/difffix");
    let _ = std::fs::remove_dir_all(&dir);
    let out = narada(&[
        "difftest",
        "--count",
        "3",
        "--seed",
        "7",
        "--inject-unsound",
        "--shrink",
        "--fixtures",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shrunk "), "{stdout}");
    let fixtures: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture dir created")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "mj"))
        .collect();
    assert!(!fixtures.is_empty(), "no fixtures written: {stdout}");
    // Fixture bodies must compile and carry the provenance header.
    for f in &fixtures {
        let text = std::fs::read_to_string(f).unwrap();
        assert!(text.contains("generator_version="), "{text}");
        assert!(text.contains("disagreement: pair"), "{text}");
    }
}

#[test]
fn difftest_writes_validatable_manifest() {
    let dir = std::env::temp_dir().join("narada-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("difftest-manifest.json");
    let out = narada(&[
        "difftest",
        "--count",
        "4",
        "--seed",
        "3",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = narada(&["report", manifest.to_str().unwrap()]);
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(stdout.contains("difftest"), "{stdout}");
}
