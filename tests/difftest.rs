//! Workspace-level differential-corpus tests: the generator lattice, the
//! sweep determinism contract, and the committed fixture regression
//! suite (programs promoted from shrunk soundness disagreements).

use narada::difftest::{check_agreement, run_sweep, ClassSpec, DiffConfig, Outcome};
use narada::vm::Engine;
use narada::Obs;
use std::path::Path;

fn fast_cfg() -> DiffConfig {
    DiffConfig {
        threads: 0,
        schedule_trials: 4,
        confirm_trials: 3,
        ..DiffConfig::default()
    }
}

/// One pass over the whole 36-point lattice: no screener-soundness
/// disagreement anywhere, and both oracles non-vacuous.
#[test]
fn lattice_sweep_agrees() {
    let cfg = DiffConfig {
        count: 36,
        ..fast_cfg()
    };
    let sweep = run_sweep(&cfg, &Obs::new());
    let sound = sweep.soundness();
    assert!(
        sound.is_empty(),
        "soundness disagreements:\n{}\n\nfirst source:\n{}",
        sound
            .iter()
            .map(|r| r.summary())
            .collect::<Vec<_>>()
            .join("\n"),
        sound[0].source
    );
    assert!(sweep.discharged() > 0, "screener discharged nothing");
    assert!(sweep.confirmed() > 0, "scheduler confirmed nothing");
}

/// The sweep digest is a pure function of `(generator version, seed,
/// count)` — same at any worker count, different under a different base
/// seed.
#[test]
fn sweep_digest_depends_only_on_seed_and_count() {
    let cfg = DiffConfig {
        count: 9,
        threads: 1,
        ..fast_cfg()
    };
    let a = run_sweep(&cfg, &Obs::new());
    let b = run_sweep(
        &DiffConfig {
            threads: 3,
            ..cfg.clone()
        },
        &Obs::new(),
    );
    assert_eq!(a.digest, b.digest, "digest varies with thread count");
    let c = run_sweep(
        &DiffConfig {
            seed: cfg.seed + 1,
            ..cfg
        },
        &Obs::new(),
    );
    assert_ne!(a.digest, c.digest, "digest ignores the base seed");
}

/// Every committed fixture — a program that once exposed a screener
/// soundness bug — must now agree. A reappearing disagreement means the
/// fixed bug regressed.
#[test]
fn promoted_fixtures_stay_fixed() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/difftest");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mj"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let prog = narada::compile(&src)
            .unwrap_or_else(|e| panic!("{}: fixture no longer compiles: {e}", path.display()));
        // Fixture seeds don't matter for soundness (any confirmed race
        // with a MustNotRace verdict is a bug at every seed), so a fixed
        // one keeps the regression run reproducible. Re-checked on both
        // engines: the verdict relation must be engine-independent.
        for engine in [Engine::TreeWalk, Engine::Bytecode] {
            let check = check_agreement(
                &prog,
                0xf1f7,
                &DiffConfig {
                    engine,
                    ..fast_cfg()
                },
            );
            assert!(
                check.disagreements.is_empty(),
                "{} [{engine}]: fixed disagreement reappeared: {:?}",
                path.display(),
                check.disagreements
            );
        }
        checked += 1;
    }
    // No fixtures yet is fine (none promoted); the walk itself is the
    // guard once they land.
    println!("checked {checked} promoted fixture(s)");
}

/// The sweep digest — which folds every class's pair counts, verdicts,
/// and confirmed races — is also independent of the execution engine:
/// the bytecode engine drives the whole pipeline (synthesis replay,
/// detection, confirmation) to byte-identical results.
#[test]
fn sweep_digest_is_engine_independent() {
    let cfg = DiffConfig {
        count: 9,
        threads: 1,
        ..fast_cfg()
    };
    let tree = run_sweep(&cfg, &Obs::new());
    let bc = run_sweep(
        &DiffConfig {
            engine: Engine::Bytecode,
            ..cfg
        },
        &Obs::new(),
    );
    assert_eq!(tree.digest, bc.digest, "sweep digest varies with engine");
    assert_eq!(tree.confirmed(), bc.confirmed());
    assert_eq!(tree.discharged(), bc.discharged());
    let summaries = |s: &narada::difftest::SweepReport| -> Vec<String> {
        s.reports.iter().map(|r| r.summary()).collect()
    };
    assert_eq!(summaries(&tree), summaries(&bc), "per-class reports differ");
}

/// The fault-injection self test end to end at workspace level: an
/// unsound screener must surface as a Soundness outcome.
#[test]
fn injected_unsoundness_is_always_caught() {
    let cfg = DiffConfig {
        count: 4,
        inject_unsound: true,
        ..fast_cfg()
    };
    let sweep = run_sweep(&cfg, &Obs::new());
    assert!(
        !sweep.soundness().is_empty(),
        "inject-unsound sweep found nothing: {}",
        sweep.summary()
    );
    for r in sweep.soundness() {
        let Outcome::Soundness(ds) = &r.outcome else {
            unreachable!()
        };
        assert!(!ds.is_empty());
    }
}

/// Spec enumeration is stable across calls and processes (pure
/// arithmetic over the base seed).
#[test]
fn spec_enumeration_is_stable() {
    let a = ClassSpec::enumerate(0xd1ff, 40);
    let b = ClassSpec::enumerate(0xd1ff, 40);
    assert_eq!(a, b);
}
