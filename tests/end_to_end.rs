//! Cross-crate end-to-end tests: the full Narada pipeline (compile → trace
//! → analyze → pair → derive → synthesize → detect → confirm) on the
//! paper's corpus classes.

use narada::detect::{evaluate_test, DetectConfig};
use narada::lang::lower::lower_program;
use narada::{synthesize, SynthesisOptions};

fn cfg() -> DetectConfig {
    DetectConfig {
        schedule_trials: 6,
        confirm_trials: 4,
        seed: 7,
        budget: 2_000_000,
        threads: 0,
        ..DetectConfig::default()
    }
}

#[test]
fn every_corpus_class_yields_pairs_and_tests() {
    for entry in narada::corpus::all() {
        let prog = entry.compile().unwrap();
        let mir = lower_program(&prog);
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        assert!(out.pair_count() > 0, "{}: no racing pairs", entry.id);
        assert!(out.test_count() > 0, "{}: no synthesized tests", entry.id);
        assert!(
            out.test_count() <= out.pair_count(),
            "{}: tests must not exceed pairs",
            entry.id
        );
        assert!(out.seed_failures.is_empty(), "{}: seeds failed", entry.id);
    }
}

#[test]
fn c1_wrapper_race_is_reproduced_harmful() {
    // The motivating hazelcast defect: two SynchronizedWriteBehindQueue
    // wrappers around one queue, racing removeFirst.
    let entry = narada::corpus::c1();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let sync_class = prog.class_by_name("SynchronizedWriteBehindQueue").unwrap();
    let test = out
        .tests
        .iter()
        .find(|t| {
            let m0 = prog.method(t.plan.racy[0].method);
            let m1 = prog.method(t.plan.racy[1].method);
            m0.owner == sync_class
                && m0.name == "removeFirst"
                && m1.name == "removeFirst"
                && t.plan.expects_race
        })
        .expect("the Fig. 3 test must be synthesized");
    // The plan must construct wrappers through the factory with a shared
    // inner queue (builder route).
    assert!(
        !test.plan.builders.is_empty(),
        "context must be built via the factory:\n{}",
        test.plan.render(&prog)
    );
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let report = evaluate_test(&prog, &mir, &seeds, &test.plan, &cfg());
    assert!(report.setup_errors.is_empty(), "{:?}", report.setup_errors);
    assert!(!report.detected.is_empty(), "race must be detected");
    assert!(
        report.harmful() >= 1,
        "lost queue updates are harmful: {:?}",
        report.reproduced
    );
}

#[test]
fn c9_close_vs_read_race_found() {
    let entry = narada::corpus::c9();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    // close() writes buf/pos/count without the monitor: it must appear as
    // the unprotected side of some pair.
    let close = prog
        .methods
        .iter()
        .find(|m| m.name == "close")
        .expect("close exists")
        .id;
    let involves_close = out
        .tests
        .iter()
        .any(|t| t.plan.racy[0].method == close || t.plan.racy[1].method == close);
    assert!(involves_close, "close() must participate in a racy test");

    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut any_harmful = 0;
    for t in out.tests.iter().filter(|t| t.plan.expects_race) {
        let rep = evaluate_test(&prog, &mir, &seeds, &t.plan, &cfg());
        any_harmful += rep.harmful();
    }
    assert!(any_harmful >= 1, "C9 has reproducible harmful races");
}

#[test]
fn c6_reset_races_are_benign_heavy() {
    // The paper's C6 signature: many benign races from the reset method
    // writing constants.
    let entry = narada::corpus::c6();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let out = synthesize(&prog, &mir, &SynthesisOptions::default());
    let reset = prog.methods.iter().find(|m| m.name == "reset").unwrap().id;
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let mut benign = 0usize;
    for t in out
        .tests
        .iter()
        .filter(|t| t.plan.racy[0].method == reset && t.plan.racy[1].method == reset)
        .take(4)
    {
        let rep = evaluate_test(&prog, &mir, &seeds, &t.plan, &cfg());
        benign += rep.benign();
    }
    assert!(
        benign >= 1,
        "reset||reset writes identical constants — benign races expected"
    );
}

#[test]
fn synthesized_suites_are_deterministic() {
    let entry = narada::corpus::c3();
    let prog = entry.compile().unwrap();
    let mir = lower_program(&prog);
    let run = || {
        let out = synthesize(&prog, &mir, &SynthesisOptions::default());
        (
            out.pair_count(),
            out.test_count(),
            out.tests
                .iter()
                .map(|t| t.plan.dedup_key())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn facade_reexports_cover_the_pipeline() {
    // Compile via the facade, synthesize via the facade, detect via the
    // facade — the public API a downstream user sees.
    let (prog, mir, out) = narada::synthesize_source(
        r#"
        class Cell { int v; void put(int x) { this.v = x; } int get() { return this.v; } }
        test seed { var c = new Cell(); c.put(1); var g = c.get(); }
        "#,
        &narada::SynthesisOptions::default(),
    )
    .unwrap();
    assert!(out.pair_count() > 0);
    let seeds: Vec<_> = prog.tests.iter().map(|t| t.id).collect();
    let plans: Vec<_> = out.tests.iter().map(|t| &t.plan).collect();
    let agg = narada::evaluate_suite(&prog, &mir, &seeds, &plans, &cfg());
    assert!(agg.races_detected > 0, "unsynchronized Cell must race");
}
